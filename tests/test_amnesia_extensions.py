"""Tests for the §4.4 extension policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.amnesia import (
    CostBasedAmnesia,
    DistributionAlignedAmnesia,
    PairPreservingAmnesia,
    StratifiedAmnesia,
)
from repro.stats import EquiWidthHistogram, js_divergence
from repro.storage import Table


class TestPairPreserving:
    def test_even_count_preserves_mean(self, rng):
        table = Table("t", ["a"])
        values = rng.integers(0, 1000, 500)
        table.insert_batch(0, {"a": values})
        policy = PairPreservingAmnesia("a")
        before = table.active_values("a").mean()
        victims = policy.select_victims(table, 100, 1, rng)
        table.forget(victims, epoch=1)
        after = table.active_values("a").mean()
        assert abs(after - before) < 2.0  # drift ≪ value scale (0..1000)

    def test_beats_random_forgetting_on_mean_drift(self):
        values = np.random.default_rng(0).integers(0, 10_000, 1000)

        def drift(policy, seed: int) -> float:
            table = Table("t", ["a"])
            table.insert_batch(0, {"a": values})
            before = table.active_values("a").mean()
            victims = policy.select_victims(
                table, 400, 1, np.random.default_rng(seed)
            )
            table.forget(victims, epoch=1)
            return abs(table.active_values("a").mean() - before)

        from repro.amnesia import UniformAmnesia

        # Pair selection is deterministic; average uniform over seeds.
        pair_drift = drift(PairPreservingAmnesia("a"), 1)
        uniform_drifts = [drift(UniformAmnesia(), s) for s in range(8)]
        assert pair_drift < np.mean(uniform_drifts)

    def test_odd_count(self, small_table, rng):
        victims = PairPreservingAmnesia("a").select_victims(
            small_table, 7, 1, rng
        )
        assert victims.size == 7
        assert np.unique(victims).size == 7

    def test_pairs_are_antipodal(self, rng):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        victims = PairPreservingAmnesia("a").select_victims(table, 10, 1, rng)
        values = np.sort(table.values("a")[victims])
        # Sum of each extreme pair ≈ 2 * mean = 99.
        pair_sums = values[:5] + values[::-1][:5]
        assert np.all(np.abs(pair_sums - 99) <= 1)

    def test_requires_column(self):
        with pytest.raises(ConfigError):
            PairPreservingAmnesia("")

    def test_zero(self, small_table, rng):
        assert PairPreservingAmnesia("a").select_victims(
            small_table, 0, 1, rng
        ).size == 0


class TestDistributionAligned:
    def test_alignment_beats_uniform(self, rng):
        from repro.amnesia import UniformAmnesia
        from repro.datagen import ZipfianDistribution

        values = ZipfianDistribution(domain=1000).sample(2000, rng)

        def run(policy):
            table = Table("t", ["a"])
            table.insert_batch(0, {"a": values})
            victims = policy.select_victims(
                table, 1000, 1, np.random.default_rng(3)
            )
            table.forget(victims, epoch=1)
            lo, hi = int(values.min()), int(values.max())
            oracle = EquiWidthHistogram.from_values(values, lo, hi, 32)
            active = EquiWidthHistogram.from_values(
                table.active_values("a"), lo, hi, 32
            )
            return js_divergence(active.counts, oracle.counts)

        aligned = run(DistributionAlignedAmnesia("a", bins=32))
        blind = run(UniformAmnesia())
        assert aligned < blind

    def test_exact_count(self, small_table, rng):
        victims = DistributionAlignedAmnesia("a", bins=8).select_victims(
            small_table, 33, 1, rng
        )
        assert victims.size == 33
        assert np.unique(victims).size == 33

    def test_validation(self):
        with pytest.raises(ConfigError):
            DistributionAlignedAmnesia("")
        with pytest.raises(ConfigError):
            DistributionAlignedAmnesia("a", bins=0)


class TestStratified:
    def test_levels_the_histogram(self, rng):
        table = Table("t", ["a"])
        # 900 values in [0,100), 100 in [100, 1000): heavily lopsided.
        values = np.concatenate(
            [rng.integers(0, 100, 900), rng.integers(100, 1000, 100)]
        )
        table.insert_batch(0, {"a": values})
        policy = StratifiedAmnesia("a", bins=10)
        victims = policy.select_victims(table, 500, 1, rng)
        table.forget(victims, epoch=1)
        remaining = table.active_values("a")
        dense = (remaining < 100).sum()
        sparse = (remaining >= 100).sum()
        # Water-filling strips the dense stratum, keeps the sparse one.
        assert sparse >= 95
        assert dense <= 410

    def test_exact_count(self, small_table, rng):
        victims = StratifiedAmnesia("a", bins=4).select_victims(
            small_table, 41, 1, rng
        )
        assert victims.size == 41
        assert np.unique(victims).size == 41


class TestCostBased:
    def test_default_cost_is_access_count(self, small_table, rng):
        small_table.record_access(np.repeat(np.arange(10), 100), epoch=1)
        policy = CostBasedAmnesia()
        hits = np.zeros(100)
        for _ in range(50):
            hits[policy.select_victims(small_table, 5, 1, rng)] += 1
        assert hits[:10].sum() > 0.9 * hits.sum()

    def test_custom_cost_fn(self, small_table, rng):
        def expensive_evens(table, candidates):
            return (candidates % 2 == 0).astype(float)

        policy = CostBasedAmnesia(cost_fn=expensive_evens)
        victims = policy.select_victims(small_table, 50, 1, rng)
        assert (victims % 2 == 0).all()

    def test_cost_fn_shape_checked(self, small_table, rng):
        policy = CostBasedAmnesia(cost_fn=lambda t, c: np.ones(3))
        with pytest.raises(ConfigError):
            policy.select_victims(small_table, 5, 1, rng)

    def test_negative_costs_rejected(self, small_table, rng):
        policy = CostBasedAmnesia(cost_fn=lambda t, c: -np.ones(c.size))
        with pytest.raises(ConfigError):
            policy.select_victims(small_table, 5, 1, rng)
