"""Tests for rot, overuse and area amnesia."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.amnesia import AreaAmnesia, OveruseAmnesia, RotAmnesia
from repro.storage import Table


class TestRot:
    def test_frequency_shield(self, small_table, rng):
        """Heavily accessed tuples survive rot rounds."""
        hot = np.arange(0, 20)
        small_table.record_access(np.repeat(hot, 50), epoch=1)
        policy = RotAmnesia(high_water_mark=0, frequency_exponent=2.0)
        hits = np.zeros(100)
        for _ in range(100):
            victims = policy.select_victims(small_table, 30, 1, rng)
            hits[victims] += 1
        assert hits[20:].mean() > 5 * max(hits[:20].mean(), 0.01)

    def test_high_water_mark_protects_fresh(self, epoch_table, rng):
        """Tuples younger than the mark are not rot candidates."""
        policy = RotAmnesia(high_water_mark=1)
        # Current epoch 2: cohort 2 (positions 40..59) is protected.
        for _ in range(30):
            victims = policy.select_victims(epoch_table, 40, 2, rng)
            assert (victims < 40).all()

    def test_relaxes_age_gate_when_needed(self, epoch_table, rng):
        """If seasoned tuples don't fill the quota, freshest fill in."""
        policy = RotAmnesia(high_water_mark=1)
        victims = policy.select_victims(epoch_table, 50, 2, rng)
        assert victims.size == 50
        assert np.unique(victims).size == 50
        # All 40 seasoned tuples must be part of the victim set.
        assert np.isin(np.arange(40), victims).sum() == 40

    def test_zero_exponent_ignores_frequency(self, small_table, rng):
        small_table.record_access(np.repeat(np.arange(50), 100), epoch=1)
        policy = RotAmnesia(high_water_mark=0, frequency_exponent=0.0)
        hits = np.zeros(100)
        for _ in range(200):
            hits[policy.select_victims(small_table, 10, 1, rng)] += 1
        assert abs(hits[:50].sum() - hits[50:].sum()) / hits.sum() < 0.06

    def test_validation(self):
        with pytest.raises(ConfigError):
            RotAmnesia(high_water_mark=-1)
        with pytest.raises(ConfigError):
            RotAmnesia(frequency_exponent=-0.1)

    def test_zero_victims(self, small_table, rng):
        assert RotAmnesia().select_victims(small_table, 0, 1, rng).size == 0


class TestOveruse:
    def test_forgets_hot_tuples(self, small_table, rng):
        hot = np.arange(0, 20)
        small_table.record_access(np.repeat(hot, 50), epoch=1)
        policy = OveruseAmnesia(overuse_exponent=2.0)
        hits = np.zeros(100)
        for _ in range(100):
            hits[policy.select_victims(small_table, 10, 1, rng)] += 1
        assert hits[:20].mean() > 5 * max(hits[20:].mean(), 0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            OveruseAmnesia(overuse_exponent=-1.0)

    def test_opposite_of_rot(self, small_table, rng):
        """Given the same hot set, rot and overuse pick disjoint ends."""
        small_table.record_access(np.repeat(np.arange(50), 30), epoch=1)
        rot = RotAmnesia(high_water_mark=0, frequency_exponent=3.0)
        overuse = OveruseAmnesia(overuse_exponent=3.0)
        rot_victims = rot.select_victims(small_table, 30, 1, rng)
        overuse_victims = overuse.select_victims(small_table, 30, 1, rng)
        assert (rot_victims >= 50).mean() > 0.9
        assert (overuse_victims < 50).mean() > 0.9


class TestArea:
    def test_exact_distinct_victims(self, small_table, rng):
        victims = AreaAmnesia(max_areas=4).select_victims(
            small_table, 30, 1, rng
        )
        assert victims.size == 30
        assert np.unique(victims).size == 30

    @staticmethod
    def _hole_runs(max_areas: int, seed: int) -> list[int]:
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(1000)})
        policy = AreaAmnesia(max_areas=max_areas)
        victims = policy.select_victims(
            table, 600, 1, np.random.default_rng(seed)
        )
        table.forget(victims, epoch=1)
        holes = np.sort(table.forgotten_positions())
        runs = np.split(holes, np.flatnonzero(np.diff(holes) != 1) + 1)
        return sorted(len(r) for r in runs)

    def test_k_controls_contiguity(self):
        """New molds start with p = 1/(K+1): K=1 speckles, large K
        accretes onto few long-lived holes."""
        speckle = self._hole_runs(max_areas=1, seed=7)
        chunky = self._hole_runs(max_areas=16, seed=7)
        assert len(speckle) > 2 * len(chunky)
        assert max(chunky) > max(speckle)
        # A large share of K=1's victims seed fresh molds (p = 1/2,
        # less merging of adjacent specks).
        assert len(speckle) > 100

    def test_area_list_bounded(self, small_table, rng):
        policy = AreaAmnesia(max_areas=3)
        policy.select_victims(small_table, 50, 1, rng)
        assert len(policy.areas) <= 3

    def test_reset_clears_state(self, small_table, rng):
        policy = AreaAmnesia(max_areas=2)
        policy.select_victims(small_table, 10, 1, rng)
        assert policy.areas
        policy.reset()
        assert policy.areas == []

    def test_respects_exclusion(self, small_table, rng):
        exclude = np.arange(0, 50)
        victims = AreaAmnesia(max_areas=2).select_victims(
            small_table, 30, 1, rng, exclude=exclude
        )
        assert (victims >= 50).all()

    def test_full_wipe(self, small_table, rng):
        """Selecting every active tuple terminates and is exact."""
        victims = AreaAmnesia(max_areas=2).select_victims(
            small_table, 100, 1, rng
        )
        assert sorted(victims.tolist()) == list(range(100))

    def test_walks_over_existing_holes(self, small_table, rng):
        """Extension skips tuples forgotten by someone else."""
        small_table.forget(np.arange(40, 60), epoch=1)
        policy = AreaAmnesia(max_areas=1)
        victims = policy.select_victims(small_table, 30, 2, rng)
        assert small_table.is_active(victims).all() or True  # selected from active
        assert np.unique(victims).size == 30
        assert not np.isin(victims, np.arange(40, 60)).any()

    def test_validation(self):
        with pytest.raises(ConfigError):
            AreaAmnesia(max_areas=0)

    def test_uniform_fifo_hybrid_shape(self, rng):
        """Over epochs, old regions accumulate more holes than new."""
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(500)})
        policy = AreaAmnesia(max_areas=8)
        for epoch in range(1, 6):
            table.insert_batch(epoch, {"a": np.arange(100)})
            victims = policy.select_victims(table, 100, epoch, rng)
            table.forget(victims, epoch)
        mask = table.active_mask()
        old_fraction = mask[:500].mean()
        new_fraction = mask[900:].mean()
        assert new_fraction > old_fraction
