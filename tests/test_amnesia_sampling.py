"""Tests for repro.amnesia.sampling: the weighted-sampling kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import AmnesiaError
from repro.amnesia import (
    uniform_sample_without_replacement,
    weighted_sample_without_replacement,
)


class TestUniformSampling:
    def test_basic(self, rng):
        out = uniform_sample_without_replacement(np.arange(100), 10, rng)
        assert out.size == 10
        assert np.unique(out).size == 10
        assert np.isin(out, np.arange(100)).all()

    def test_full_draw(self, rng):
        out = uniform_sample_without_replacement(np.arange(5), 5, rng)
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4]

    def test_zero_draw(self, rng):
        assert uniform_sample_without_replacement(np.arange(5), 0, rng).size == 0

    def test_overdraw_raises(self, rng):
        with pytest.raises(AmnesiaError):
            uniform_sample_without_replacement(np.arange(3), 4, rng)

    def test_negative_raises(self, rng):
        with pytest.raises(AmnesiaError):
            uniform_sample_without_replacement(np.arange(3), -1, rng)


class TestWeightedSampling:
    def test_distinct_and_from_candidates(self, rng):
        candidates = np.arange(50) * 3
        weights = rng.random(50)
        out = weighted_sample_without_replacement(candidates, weights, 20, rng)
        assert out.size == 20
        assert np.unique(out).size == 20
        assert np.isin(out, candidates).all()

    def test_zero_weight_excluded_when_possible(self, rng):
        candidates = np.arange(10)
        weights = np.zeros(10)
        weights[7] = 1.0
        for _ in range(20):
            out = weighted_sample_without_replacement(candidates, weights, 1, rng)
            assert out.tolist() == [7]

    def test_zero_weights_fill_after_positive_exhausted(self, rng):
        candidates = np.arange(5)
        weights = np.array([0.0, 0.0, 0.0, 1.0, 1.0])
        out = weighted_sample_without_replacement(candidates, weights, 5, rng)
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4]

    def test_all_zero_weights_degrade_to_uniform(self, rng):
        candidates = np.arange(10)
        out = weighted_sample_without_replacement(
            candidates, np.zeros(10), 4, rng
        )
        assert np.unique(out).size == 4

    def test_heavier_weight_sampled_more(self, rng):
        """Statistical check: 100:1 weight ratio shows in frequencies."""
        candidates = np.arange(2)
        weights = np.array([100.0, 1.0])
        hits = sum(
            weighted_sample_without_replacement(candidates, weights, 1, rng)[0] == 0
            for _ in range(500)
        )
        assert hits > 450

    def test_matches_theoretical_first_draw_distribution(self, rng):
        """First-draw inclusion matches w_i / sum(w) within tolerance."""
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        counts = np.zeros(4)
        trials = 4000
        for _ in range(trials):
            pick = weighted_sample_without_replacement(
                np.arange(4), weights, 1, rng
            )[0]
            counts[pick] += 1
        observed = counts / trials
        expected = weights / weights.sum()
        assert np.abs(observed - expected).max() < 0.03

    def test_shape_mismatch(self, rng):
        with pytest.raises(AmnesiaError):
            weighted_sample_without_replacement(
                np.arange(3), np.ones(4), 1, rng
            )

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(AmnesiaError):
            weighted_sample_without_replacement(
                np.arange(3), np.array([1.0, -1.0, 1.0]), 1, rng
            )

    def test_nan_weights_rejected(self, rng):
        with pytest.raises(AmnesiaError):
            weighted_sample_without_replacement(
                np.arange(3), np.array([1.0, np.nan, 1.0]), 1, rng
            )

    def test_overdraw_raises(self, rng):
        with pytest.raises(AmnesiaError):
            weighted_sample_without_replacement(
                np.arange(3), np.ones(3), 4, rng
            )

    def test_zero_draw(self, rng):
        out = weighted_sample_without_replacement(
            np.arange(3), np.ones(3), 0, rng
        )
        assert out.size == 0

    def test_full_positive_pool_draw(self, rng):
        out = weighted_sample_without_replacement(
            np.arange(4), np.ones(4), 4, rng
        )
        assert sorted(out.tolist()) == [0, 1, 2, 3]
