"""Tests for repro.amnesia.temporal: fifo, uniform, retro, ante."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import (
    AmnesiaError,
    ConfigError,
    InsufficientVictimsError,
)
from repro.amnesia import (
    AnterogradeAmnesia,
    FifoAmnesia,
    RetrogradeAmnesia,
    UniformAmnesia,
)
from repro.storage import Table


class TestFifo:
    def test_forgets_oldest(self, small_table, rng):
        victims = FifoAmnesia().select_victims(small_table, 10, 1, rng)
        assert victims.tolist() == list(range(10))

    def test_skips_already_forgotten(self, small_table, rng):
        small_table.forget(np.arange(5), epoch=1)
        victims = FifoAmnesia().select_victims(small_table, 5, 2, rng)
        assert victims.tolist() == [5, 6, 7, 8, 9]

    def test_respects_exclusion(self, small_table, rng):
        victims = FifoAmnesia().select_victims(
            small_table, 3, 1, rng, exclude=np.array([0, 2])
        )
        assert victims.tolist() == [1, 3, 4]

    def test_overdraw_raises(self, small_table, rng):
        with pytest.raises(InsufficientVictimsError):
            FifoAmnesia().select_victims(small_table, 101, 1, rng)

    def test_sliding_window_emerges(self, rng):
        """Repeated fifo rounds leave exactly the newest suffix."""
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        policy = FifoAmnesia()
        for epoch in range(1, 4):
            table.insert_batch(epoch, {"a": np.arange(20)})
            victims = policy.select_victims(table, 20, epoch, rng)
            table.forget(victims, epoch)
        active = table.active_positions()
        assert active.tolist() == list(range(60, 160))


class TestUniform:
    def test_exact_count_distinct_active(self, small_table, rng):
        victims = UniformAmnesia().select_victims(small_table, 40, 1, rng)
        assert victims.size == 40
        assert np.unique(victims).size == 40
        assert small_table.is_active(victims).all()

    def test_roughly_uniform_over_positions(self, rng):
        """No systematic bias toward either end of the timeline."""
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(1000)})
        policy = UniformAmnesia()
        hits = np.zeros(1000)
        for _ in range(200):
            victims = policy.select_victims(table, 100, 1, rng)
            hits[victims] += 1
        old_half, new_half = hits[:500].sum(), hits[500:].sum()
        assert abs(old_half - new_half) / (old_half + new_half) < 0.05


class TestAgeBiased:
    def test_retro_prefers_old(self, small_table, rng):
        policy = RetrogradeAmnesia(bias=4.0)
        hits = np.zeros(100)
        for _ in range(100):
            victims = policy.select_victims(small_table, 10, 1, rng)
            hits[victims] += 1
        assert hits[:20].sum() > 3 * hits[80:].sum()

    def test_ante_prefers_new(self, small_table, rng):
        policy = AnterogradeAmnesia(bias=4.0)
        hits = np.zeros(100)
        for _ in range(100):
            victims = policy.select_victims(small_table, 10, 1, rng)
            hits[victims] += 1
        assert hits[80:].sum() > 3 * hits[:20].sum()

    def test_bias_zero_degrades_to_uniform(self, small_table, rng):
        policy = RetrogradeAmnesia(bias=0.0)
        hits = np.zeros(100)
        for _ in range(200):
            victims = policy.select_victims(small_table, 10, 1, rng)
            hits[victims] += 1
        assert abs(hits[:50].sum() - hits[50:].sum()) / hits.sum() < 0.06

    def test_negative_bias_rejected(self):
        with pytest.raises(ConfigError):
            RetrogradeAmnesia(bias=-1.0)
        with pytest.raises(ConfigError):
            AnterogradeAmnesia(bias=-0.5)

    def test_zero_victims(self, small_table, rng):
        assert AnterogradeAmnesia().select_victims(small_table, 0, 1, rng).size == 0

    def test_ante_default_bias(self):
        assert AnterogradeAmnesia().bias == 6.0

    def test_names(self):
        assert FifoAmnesia().name == "fifo"
        assert UniformAmnesia().name == "uniform"
        assert RetrogradeAmnesia().name == "retro"
        assert AnterogradeAmnesia().name == "ante"


class TestValidateVictims:
    def test_accepts_exact_set(self, small_table, rng):
        policy = UniformAmnesia()
        victims = policy.select_victims(small_table, 5, 1, rng)
        out = policy.validate_victims(small_table, victims, 5)
        assert out.size == 5

    def test_rejects_duplicates(self, small_table):
        with pytest.raises(AmnesiaError):
            UniformAmnesia().validate_victims(
                small_table, np.array([1, 1, 2]), 3
            )

    def test_rejects_wrong_count(self, small_table):
        with pytest.raises(AmnesiaError):
            UniformAmnesia().validate_victims(small_table, np.array([1]), 2)

    def test_rejects_forgotten_victims(self, small_table):
        small_table.forget(np.array([3]), epoch=1)
        with pytest.raises(AmnesiaError):
            UniformAmnesia().validate_victims(small_table, np.array([3]), 1)

    def test_rejects_2d(self, small_table):
        with pytest.raises(AmnesiaError):
            UniformAmnesia().validate_victims(
                small_table, np.zeros((2, 2), dtype=np.int64), 4
            )
