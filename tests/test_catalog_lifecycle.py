"""Catalog lifecycle: drop/recreate correctness and lock regressions.

Two races fixed alongside the serving layer are pinned here with
deterministic interleavings:

* ``Catalog.drop`` used to mutate the planner/executor caches without
  holding ``_build_lock``, so an in-flight lazy build could re-insert
  an entry for the dropped table — and a recreated table under the
  same name then served the *old* table's planner.
* ``Catalog.source_lock`` used to index ``_table_locks`` directly, so
  a concurrent drop between the existence check and the lookup leaked
  a bare ``KeyError`` instead of the library's ``SchemaError``.
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager

import numpy as np
import pytest

from repro._util.errors import SchemaError
from repro.query import AggregateFunction, AggregateQuery, RangePredicate, RangeQuery
from repro.storage import Catalog, CohortZoneMap


def _query(low: int, high: int) -> RangeQuery:
    return RangeQuery(RangePredicate("a", low, high))


class TestDropBuildRace:
    def test_drop_blocks_on_inflight_lazy_build(self, monkeypatch):
        """A drop racing a lazy planner build must wait for the build
        lock — and the purge must land *after* the build's insertion,
        so a recreated table never inherits the stale planner."""
        catalog = Catalog(plan="auto")
        old = catalog.create_table("t", ["a"])
        old.insert_batch(0, {"a": [1, 2, 3]})

        in_build = threading.Event()
        resume = threading.Event()
        original_init = CohortZoneMap.__init__

        def paused_init(self, table, columns=None):
            # Pause the lazy build inside _build_lock, between the
            # existence check and the cache insertion — the exact
            # window the unfixed drop slipped through.
            if table is old:
                in_build.set()
                assert resume.wait(5)
            original_init(self, table, columns)

        monkeypatch.setattr(CohortZoneMap, "__init__", paused_init)

        def build():
            try:
                catalog.planner("t")
            except SchemaError:
                pass  # acceptable: the build lost the race cleanly

        builder = threading.Thread(target=build)
        builder.start()
        assert in_build.wait(5)

        dropper = threading.Thread(target=lambda: catalog.drop("t"))
        dropper.start()
        dropper.join(0.3)
        # The fixed drop is stuck on _build_lock while the build is in
        # flight; the unfixed drop completed here (and the build then
        # re-inserted a planner for the dropped table).
        assert dropper.is_alive(), "drop must serialize behind the lazy build"

        resume.set()
        builder.join(5)
        dropper.join(5)
        assert not dropper.is_alive()

        new = catalog.create_table("t", ["a"])
        new.insert_batch(0, {"a": [9, 10]})
        assert catalog.planner("t").table is new
        assert catalog.executor("t").table is new
        catalog.close()

    def test_recreate_asserts_no_stale_cache_survives(self):
        """The admission guard behind the fix: a surviving stale entry
        is a loud SchemaError, never a silent wrong planner."""
        catalog = Catalog(plan="auto")
        catalog.create_table("t", ["a"])
        catalog.get("t").insert_batch(0, {"a": [1]})
        catalog.planner("t")
        # Simulate the pre-fix corruption: drop without the purge.
        with catalog._build_lock:
            del catalog._tables["t"]
            catalog._table_locks.pop("t")
        with pytest.raises(SchemaError, match="stale planner/executor"):
            catalog.create_table("t", ["a"])
        catalog.close()


class TestSourceLockErrors:
    def test_unknown_name_raises_schema_error(self):
        catalog = Catalog()
        with pytest.raises(SchemaError, match="no table named 'missing'"):
            catalog.source_lock("missing")
        catalog.close()

    def test_racing_drop_raises_schema_error_not_keyerror(self, monkeypatch):
        """Drop landing between the existence check and the lock lookup
        must surface as SchemaError (pre-fix: a bare KeyError)."""
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        real_get = Catalog.get

        def racing_get(self, name):
            table = real_get(self, name)
            if name == "t" and "t" in self._tables:
                # A concurrent caller drops the table right after the
                # check passed.
                self.drop("t")
            return table

        monkeypatch.setattr(Catalog, "get", racing_get)
        with pytest.raises(SchemaError, match="no table named 't'"):
            catalog.source_lock("t")
        catalog.close()

    def test_sharded_sources_get_a_null_context(self):
        """Sharded stores synchronize internally (EpochGate + per-shard
        locks): their source lock is a reusable null context."""
        catalog = Catalog()

        class FakeSharded:
            scan_rows = estimate_scan = lambda self: None
            partition_count = 1
            plan_mode = "auto"

        catalog.register_sharded("s", FakeSharded())
        lock = catalog.source_lock("s")
        assert isinstance(lock, AbstractContextManager)
        with lock:
            pass
        catalog.close()


class TestDropRecreateEndToEnd:
    def test_name_reuse_reflects_only_the_new_table(self):
        """Satellite: after drop→recreate under one name, planner
        statistics, access accounting and plan_report describe only the
        new table's life."""
        catalog = Catalog(plan="cost", stats="hist")
        first = catalog.create_table("t", ["a"])
        first.insert_batch(0, {"a": np.arange(0, 100)})
        first.insert_batch(1, {"a": np.arange(100, 200)})
        for low in (0, 50, 120):
            catalog.execute("t", _query(low, low + 40), epoch=1)
        catalog.execute(
            "t", AggregateQuery(AggregateFunction.SUM, "a"), epoch=1
        )
        first.forget(np.arange(0, 50), epoch=2)
        old_planner = catalog.planner("t")
        assert old_planner.stats()["queries_planned"] == 4
        assert int(first.access_counts().sum()) > 0

        catalog.drop("t")
        second = catalog.create_table("t", ["a"])
        second.insert_batch(0, {"a": np.array([1000, 1001, 1002])})
        result = catalog.execute("t", _query(1000, 1002), epoch=0)

        planner = catalog.planner("t")
        assert planner is not old_planner
        assert planner.table is second
        assert catalog.executor("t").table is second
        stats = planner.stats()
        assert stats["queries_planned"] == 1  # only the new table's query
        assert stats["zone_map_cohorts"] == 1
        assert result.rf == 2 and result.mf == 0
        # Access accounting starts from zero on the new table.
        assert second.access_counts().tolist() == [1, 1, 0]
        assert second.forgotten_count == 0
        report = catalog.plan_report()
        assert "1 queries planned" in report or "1 queries" in report
        # The old table keeps its own life, unreferenced by the catalog.
        assert first.forgotten_count == 50
        assert "t" in catalog and len(catalog) == 1
        catalog.close()

    def test_lifecycle_hooks_fire_in_order(self):
        events: list = []
        catalog = Catalog()
        catalog.add_lifecycle_hook(lambda event, name: events.append((event, name)))
        catalog.create_table("t", ["a"])
        catalog.drop("t")
        catalog.create_table("t", ["a"])
        assert events == [("create", "t"), ("drop", "t"), ("create", "t")]
        catalog.close()
