"""Tests for the command-line harness."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "F1", "--seed", "7"])
        assert args.command == "run"
        assert args.experiment == "F1"
        assert args.seed == 7

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for experiment_id in EXPERIMENTS:
            assert experiment_id in text

    def test_unknown_experiment_fails(self):
        out = io.StringIO()
        assert main(["run", "ZZ"], out=out) == 2

    def test_run_lowercase_accepted(self, monkeypatch):
        calls = {}

        def fake_runner(seed=None):
            calls["seed"] = seed

            class R:
                def render(self):
                    return "ok"

            return R()

        monkeypatch.setitem(EXPERIMENTS, "F1", fake_runner)
        out = io.StringIO()
        assert main(["run", "f1", "--seed", "3"], out=out) == 0
        assert calls["seed"] == 3
        assert "ok" in out.getvalue()

    def test_query_flag_sets_and_restores_default(self, monkeypatch):
        from repro.core.config import default_cross_query

        seen = {}

        def fake_runner():
            seen["spec"] = default_cross_query()

            class R:
                def render(self):
                    return "ok"

            return R()

        monkeypatch.setitem(EXPERIMENTS, "X5", fake_runner)
        before = default_cross_query()
        out = io.StringIO()
        assert (
            main(["run", "X5", "--query", "union:s1,s2:low=0,high=9"], out=out)
            == 0
        )
        assert seen["spec"] == "union:s1,s2:low=0,high=9"
        assert default_cross_query() == before  # restored after the run

    def test_bad_query_spec_rejected_before_running(self, monkeypatch):
        from repro.core.config import default_cross_query

        def boom():  # pragma: no cover - must not run
            raise AssertionError("experiment ran despite a bad --query")

        monkeypatch.setitem(EXPERIMENTS, "X5", boom)
        before = default_cross_query()
        out = io.StringIO()
        assert main(["run", "X5", "--query", "merge:a,b"], out=out) == 2
        assert default_cross_query() == before

    def test_query_binding_error_exits_cleanly(self):
        """A --query that parses but names tables the experiment does
        not create fails with the clean exit-2 diagnostic, not a
        traceback (binding happens only once the catalog resolves it)."""
        out = io.StringIO()
        assert (
            main(["run", "X5", "--query", "join:s1,sX:on=value"], out=out)
            == 2
        )

    def test_run_all(self, monkeypatch):
        ran = []

        def make_fake(experiment_id):
            def fake_runner():
                ran.append(experiment_id)

                class R:
                    def render(self):
                        return experiment_id

                return R()

            return fake_runner

        for experiment_id in list(EXPERIMENTS):
            monkeypatch.setitem(EXPERIMENTS, experiment_id, make_fake(experiment_id))
        out = io.StringIO()
        assert main(["run", "all"], out=out) == 0
        assert ran == list(EXPERIMENTS)


class TestPlanFlag:
    def test_parser_accepts_plan(self):
        args = build_parser().parse_args(["run", "F1", "--plan", "zonemap"])
        assert args.plan == "zonemap"

    def test_parser_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "F1", "--plan", "turbo"])

    def test_plan_flag_scoped_to_invocation(self, monkeypatch):
        from repro.core.config import default_plan

        monkeypatch.setitem(EXPERIMENTS, "F1", lambda seed=None: _FakeResult())
        before = default_plan()
        out = io.StringIO()
        assert main(["run", "F1", "--plan", "scan"], out=out) == 0
        assert default_plan() == before


class TestStatsFlag:
    def test_parser_accepts_stats(self):
        args = build_parser().parse_args(["run", "F1", "--stats", "hist"])
        assert args.stats == "hist"

    def test_parser_rejects_unknown_stats(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "F1", "--stats", "psychic"])

    def test_stats_flag_scoped_to_invocation(self, monkeypatch):
        from repro.core.config import default_stats

        seen = {}

        def fake(seed=None):
            seen["stats"] = default_stats()
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", fake)
        before = default_stats()
        out = io.StringIO()
        assert main(["run", "F1", "--stats", "hist"], out=out) == 0
        assert seen["stats"] == "hist"  # the experiment saw the flag
        assert default_stats() == before  # and the default was restored


class TestWorkersAndRebalanceFlags:
    def test_parser_accepts_workers_and_rebalance(self):
        args = build_parser().parse_args(
            ["run", "X2", "--workers", "4", "--rebalance", "adaptive"]
        )
        assert args.workers == 4
        assert args.rebalance == "adaptive"

    def test_parser_rejects_unknown_rebalance(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "X2", "--rebalance", "entropy"])

    def test_invalid_workers_fails_cleanly(self):
        from repro.core.config import default_plan

        before = default_plan()
        out = io.StringIO()
        assert main(
            ["run", "F1", "--plan", "cost", "--workers", "0"], out=out
        ) == 2
        # The early error must not leak a half-applied configuration.
        assert default_plan() == before

    def test_flags_reach_process_defaults_and_are_restored(self, monkeypatch):
        from repro.core.config import default_rebalance, default_workers

        seen = {}

        def fake_runner(seed=None):
            seen["workers"] = default_workers()
            seen["rebalance"] = default_rebalance()
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", fake_runner)
        before = (default_workers(), default_rebalance())
        out = io.StringIO()
        assert main(
            ["run", "F1", "--workers", "4", "--rebalance", "rows"], out=out
        ) == 0
        assert seen == {"workers": 4, "rebalance": "rows"}
        assert (default_workers(), default_rebalance()) == before


class TestBatchSizeFlag:
    def test_parser_accepts_batch_size(self):
        args = build_parser().parse_args(["run", "X5", "--batch-size", "512"])
        assert args.batch_size == 512

    def test_invalid_batch_size_fails_cleanly(self):
        from repro.core.config import default_batch_size, default_plan

        before = (default_plan(), default_batch_size())
        out = io.StringIO()
        assert main(
            ["run", "F1", "--plan", "cost", "--batch-size", "0"], out=out
        ) == 2
        # The early error must not leak a half-applied configuration.
        assert (default_plan(), default_batch_size()) == before

    def test_flag_reaches_process_default_and_is_restored(self, monkeypatch):
        from repro.core.config import default_batch_size

        seen = {}

        def fake_runner(seed=None):
            seen["batch"] = default_batch_size()
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", fake_runner)
        before = default_batch_size()
        out = io.StringIO()
        assert main(["run", "F1", "--batch-size", "64"], out=out) == 0
        assert seen == {"batch": 64}
        assert default_batch_size() == before


class TestCompressFlag:
    def test_parser_accepts_compress(self):
        args = build_parser().parse_args(["run", "F3", "--compress", "on"])
        assert args.compress == "on"

    def test_parser_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "F3", "--compress", "zstd"])

    def test_flag_reaches_process_default_and_is_restored(self, monkeypatch):
        from repro.core.config import default_compress

        seen = {}

        def fake_runner(seed=None):
            seen["compress"] = default_compress()
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", fake_runner)
        before = default_compress()
        out = io.StringIO()
        assert main(["run", "F1", "--compress", "on"], out=out) == 0
        assert seen == {"compress": "on"}
        assert default_compress() == before


class TestDefaultsRestoredOnFailure:
    def _snapshot(self):
        from repro.core.config import (
            default_batch_size,
            default_checkpoint,
            default_compress,
            default_cross_query,
            default_faults,
            default_plan,
            default_rebalance,
            default_stats,
            default_workers,
        )

        return (
            default_plan(),
            default_stats(),
            default_workers(),
            default_rebalance(),
            default_cross_query(),
            default_batch_size(),
            default_compress(),
            default_faults(),
            default_checkpoint(),
        )

    def test_raising_run_restores_every_process_default(self, monkeypatch):
        """A run that explodes mid-experiment must not leak any of the
        nine process defaults it overrode — otherwise every later
        in-process run silently inherits this invocation's flags."""

        def boom(seed=None):
            raise RuntimeError("experiment exploded")

        monkeypatch.setitem(EXPERIMENTS, "F1", boom)
        before = self._snapshot()
        with pytest.raises(RuntimeError, match="experiment exploded"):
            main(
                [
                    "run", "F1",
                    "--plan", "cost",
                    "--stats", "hist",
                    "--workers", "4",
                    "--rebalance", "adaptive",
                    "--query", "union:s1,s2",
                    "--batch-size", "128",
                    "--compress", "on",
                    "--faults", "serve.query:crash@999",
                    "--checkpoint", "/tmp/never-written.npz",
                ],
                out=io.StringIO(),
            )
        assert self._snapshot() == before
        from repro import faults

        assert faults.active_plan() is None, "fault plan must be disarmed"

    def test_raising_setter_restores_prior_overrides(self, monkeypatch):
        """Even a setter raising midway through the override sequence
        (here: the workers setter, after plan and stats were already
        applied) leaves all defaults untouched."""
        from repro.core import config

        def broken_setter(n):
            raise RuntimeError("setter exploded")

        monkeypatch.setitem(
            EXPERIMENTS, "F1", lambda seed=None: _FakeResult()
        )
        monkeypatch.setattr(
            "repro.cli.set_default_workers", broken_setter
        )
        before = self._snapshot()
        with pytest.raises(RuntimeError, match="setter exploded"):
            main(
                [
                    "run", "F1",
                    "--plan", "cost",
                    "--stats", "hist",
                    "--workers", "4",
                    "--batch-size", "128",
                    "--compress", "on",
                ],
                out=io.StringIO(),
            )
        assert self._snapshot() == before
        assert config.default_plan() == before[0]


class _FakeResult:
    def render(self):
        return "ok"


class TestFaultsAndRecovery:
    """The --faults / --checkpoint flags and the recover subcommand."""

    def test_parser_accepts_faults_checkpoint_and_recover(self):
        args = build_parser().parse_args(
            ["run", "F1", "--faults", "checkpoint.tmp:crash@2",
             "--checkpoint", "/tmp/ck.npz"]
        )
        assert args.faults == "checkpoint.tmp:crash@2"
        assert args.checkpoint == "/tmp/ck.npz"
        args = build_parser().parse_args(
            ["recover", "/tmp/ck.npz", "--policy", "fifo"]
        )
        assert args.command == "recover"
        assert args.path == "/tmp/ck.npz"
        assert args.policy == "fifo"

    def test_bad_faults_spec_rejected_before_running(self, monkeypatch, capsys):
        ran = []
        monkeypatch.setitem(
            EXPERIMENTS, "F1", lambda seed=None: ran.append(1) or _FakeResult()
        )
        assert (
            main(["run", "F1", "--faults", "nosuchpoint:crash"], out=io.StringIO())
            == 2
        )
        assert ran == [], "experiment must not start under a bad fault spec"
        assert "--faults" in capsys.readouterr().err

    def test_injected_crash_exits_3_and_restores_defaults(
        self, monkeypatch, capsys
    ):
        from repro import faults
        from repro.core.config import default_checkpoint, default_faults

        def crashing(seed=None):
            faults.fault_point("serve.query")
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", crashing)
        code = main(
            ["run", "F1", "--faults", "serve.query:crash",
             "--checkpoint", "/tmp/unused-ck.npz"],
            out=io.StringIO(),
        )
        assert code == 3
        assert "crash fault injected" in capsys.readouterr().err
        assert faults.active_plan() is None
        assert default_faults() == ""
        assert default_checkpoint() == ""

    def test_faults_env_var_is_honored(self, monkeypatch):
        from repro import faults as faults_module

        def crashing(seed=None):
            faults_module.fault_point("serve.query")
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "F1", crashing)
        monkeypatch.setenv("REPRO_FAULTS", "serve.query:crash")
        assert main(["run", "F1"], out=io.StringIO()) == 3
        assert faults_module.active_plan() is None

    def test_bad_faults_env_var_exits_2(self, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "F1", lambda seed=None: _FakeResult()
        )
        monkeypatch.setenv("REPRO_FAULTS", "nosuchpoint:crash")
        assert main(["run", "F1"], out=io.StringIO()) == 2

    def test_recover_restores_a_table_checkpoint(self, tmp_path):
        import numpy as np

        from repro.storage import Table, save_table

        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(40)})
        path = save_table(table, tmp_path / "ck")
        out = io.StringIO()
        assert main(["recover", str(path)], out=out) == 0
        text = out.getvalue()
        assert "recovered Table" in text
        assert "40 active / 40 rows" in text

    def test_recover_missing_checkpoint_exits_1(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "nope.npz")], out=io.StringIO()) == 1
        assert "recover failed" in capsys.readouterr().err

    def test_recover_unknown_policy_exits_2(self, tmp_path, capsys):
        assert (
            main(
                ["recover", str(tmp_path / "ck.npz"), "--policy", "nosuch"],
                out=io.StringIO(),
            )
            == 2
        )
        assert "nosuch" in capsys.readouterr().err
