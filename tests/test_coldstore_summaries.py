"""Tests for repro.coldstore and repro.summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ColdStoreError, ConfigError, LifecycleError
from repro.coldstore import GLACIER_2016, ColdStore, StorageCostModel
from repro.query import AggregateFunction
from repro.summaries import ColumnSummary, SummaryStore

_TB = 1024.0**4


class TestCostModel:
    def test_paper_prices(self):
        assert GLACIER_2016.cold_storage_usd_per_tb_year == 48.0
        assert GLACIER_2016.cold_retrieval_usd_per_tb == 30.0
        assert GLACIER_2016.cold_retrieval_latency_hours == 12.0

    def test_storage_cost_scales(self):
        model = StorageCostModel()
        assert model.cold_storage_cost(int(_TB), 1.0) == pytest.approx(48.0)
        assert model.cold_storage_cost(int(_TB) // 2, 2.0) == pytest.approx(48.0)
        assert model.hot_storage_cost(int(_TB), 1.0) == pytest.approx(360.0)

    def test_retrieval_cost(self):
        model = StorageCostModel()
        assert model.cold_retrieval_cost(int(_TB)) == pytest.approx(30.0)
        assert model.hot_retrieval_cost(int(_TB)) == 0.0

    def test_breakeven(self):
        model = StorageCostModel()
        # (360 - 48) / 30 = 10.4 full reads per year.
        assert model.breakeven_reads_per_year() == pytest.approx(10.4)

    def test_breakeven_free_retrieval(self):
        model = StorageCostModel(cold_retrieval_usd_per_tb=0.0)
        assert model.breakeven_reads_per_year() == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigError):
            StorageCostModel(cold_storage_usd_per_tb_year=-1.0)
        with pytest.raises(ConfigError):
            StorageCostModel(hot_storage_usd_per_tb_year=0.0)


class TestColdStore:
    def test_archive_and_retrieve(self):
        store = ColdStore()
        store.archive(1, np.array([3, 4]), {"a": np.array([30, 40])})
        store.archive(2, np.array([9]), {"a": np.array([90])})
        assert store.segment_count == 2
        assert store.tuple_count == 3
        out = store.retrieve(np.array([9, 3]))
        assert out["a"].tolist() == [90, 30]

    def test_contains(self):
        store = ColdStore()
        store.archive(1, np.array([5]), {"a": np.array([50])})
        assert store.contains(np.array([5, 6])).tolist() == [True, False]

    def test_double_archive_rejected(self):
        store = ColdStore()
        store.archive(1, np.array([5]), {"a": np.array([50])})
        with pytest.raises(ColdStoreError):
            store.archive(2, np.array([5]), {"a": np.array([50])})

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ColdStoreError):
            ColdStore().archive(1, np.array([5, 5]), {"a": np.array([1, 2])})

    def test_misaligned_values_rejected(self):
        with pytest.raises(ColdStoreError):
            ColdStore().archive(1, np.array([5]), {"a": np.array([1, 2])})

    def test_empty_archive_rejected(self):
        with pytest.raises(ColdStoreError):
            ColdStore().archive(1, np.empty(0, dtype=np.int64), {"a": np.empty(0)})

    def test_missing_retrieve_rejected(self):
        store = ColdStore()
        store.archive(1, np.array([5]), {"a": np.array([50])})
        with pytest.raises(ColdStoreError):
            store.retrieve(np.array([6]))
        with pytest.raises(ColdStoreError):
            store.retrieve(np.empty(0, dtype=np.int64))

    def test_cost_accounting(self):
        store = ColdStore()
        store.archive(1, np.array([1, 2]), {"a": np.array([10, 20])})
        assert store.stored_bytes == 2 * 16  # positions + one column
        assert store.retrieval_cost_so_far() == 0.0
        store.retrieve(np.array([1]))
        assert store.usage.retrieval_ops == 1
        assert store.retrieval_cost_so_far() > 0.0
        assert store.retrieval_latency_so_far() == pytest.approx(12.0)
        assert store.storage_cost(1.0) > 0.0

    def test_archived_values_are_copies(self):
        values = np.array([10, 20])
        store = ColdStore()
        store.archive(1, np.array([1, 2]), {"a": values})
        values[0] = 999
        assert store.retrieve(np.array([1]))["a"][0] == 10


class TestColumnSummary:
    def test_from_values(self):
        summary = ColumnSummary.from_values(np.array([1, 3, 5]))
        assert summary.count == 3
        assert summary.total == 9.0
        assert summary.mean == 3.0
        assert summary.min == 1 and summary.max == 5
        assert summary.variance == pytest.approx(np.array([1, 3, 5]).var())

    def test_merge_matches_concat(self, rng):
        x = rng.integers(0, 100, 500)
        y = rng.integers(50, 400, 300)
        merged = ColumnSummary.from_values(x).merge(ColumnSummary.from_values(y))
        both = np.concatenate([x, y])
        assert merged.count == 800
        assert merged.mean == pytest.approx(both.mean())
        assert merged.variance == pytest.approx(both.var())
        assert merged.min == both.min() and merged.max == both.max()

    def test_empty_rejected(self):
        with pytest.raises(LifecycleError):
            ColumnSummary.from_values(np.empty(0, dtype=np.int64))


class TestSummaryStore:
    def test_accumulation(self):
        store = SummaryStore()
        store.add(1, {"a": np.array([1, 3])})
        store.add(2, {"a": np.array([5])})
        assert store.event_count == 2
        assert store.tuple_count == 3
        assert store.combined("a").mean == 3.0
        assert store.nbytes == 2 * 5 * 8

    def test_answers(self):
        store = SummaryStore()
        store.add(1, {"a": np.array([2, 4, 6])})
        assert store.answer(AggregateFunction.AVG, "a") == 4.0
        assert store.answer(AggregateFunction.SUM, "a") == 12.0
        assert store.answer(AggregateFunction.COUNT, "a") == 3.0
        assert store.answer(AggregateFunction.MIN, "a") == 2.0
        assert store.answer(AggregateFunction.MAX, "a") == 6.0
        assert store.answer(AggregateFunction.VAR, "a") == pytest.approx(
            np.array([2, 4, 6]).var()
        )

    def test_combined_with_active_exact(self, rng):
        forgotten = rng.integers(0, 1000, 400)
        active = rng.integers(0, 1000, 600)
        store = SummaryStore()
        store.add(1, {"a": forgotten})
        union = np.concatenate([forgotten, active])
        for fn in (AggregateFunction.AVG, AggregateFunction.SUM,
                   AggregateFunction.MIN, AggregateFunction.MAX,
                   AggregateFunction.COUNT, AggregateFunction.VAR,
                   AggregateFunction.STD):
            expected = fn.compute(union)
            assert store.combined_with_active(fn, "a", active) == pytest.approx(
                expected
            ), fn

    def test_combined_with_active_no_summaries(self):
        store = SummaryStore()
        active = np.array([1, 2, 3])
        assert store.combined_with_active(
            AggregateFunction.AVG, "a", active
        ) == pytest.approx(2.0)

    def test_combined_with_empty_active(self):
        store = SummaryStore()
        store.add(1, {"a": np.array([4, 8])})
        out = store.combined_with_active(
            AggregateFunction.AVG, "a", np.empty(0, dtype=np.int64)
        )
        assert out == 6.0

    def test_missing_column(self):
        store = SummaryStore()
        with pytest.raises(LifecycleError):
            store.combined("a")

    def test_mismatched_column_counts_rejected(self):
        with pytest.raises(LifecycleError):
            SummaryStore().add(
                1, {"a": np.array([1, 2]), "b": np.array([1])}
            )

    def test_empty_event_rejected(self):
        with pytest.raises(LifecycleError):
            SummaryStore().add(1, {})
