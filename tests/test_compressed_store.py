"""Tests for repro.storage.compressed: the compressed cohort store."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import StorageError
from repro.storage import CompressedCohortStore, Table
from repro.storage.compressed import DECODE_FACTORS


def make_table(batches):
    """A table with one int column 'a' and one cohort per batch."""
    table = Table("t", ["a"])
    for epoch, values in enumerate(batches):
        table.insert_batch(epoch, {"a": np.asarray(values, dtype=np.int64)})
    return table


@pytest.fixture
def store():
    """Three demoted cohorts with distinct codec-friendly shapes."""
    table = make_table(
        [
            np.repeat([5, 9], 50),                   # rle-friendly
            np.arange(1_000_000, 1_000_100),         # for-friendly
            np.tile([3, 17, 99], 40),                # dict-friendly
        ]
    )
    s = CompressedCohortStore(table, min_age=1)
    s.demote_cold(current_epoch=3)
    return s


class TestConstruction:
    def test_validates_columns(self):
        table = make_table([np.arange(10)])
        with pytest.raises(StorageError):
            CompressedCohortStore(table, columns=["missing"])
        with pytest.raises(StorageError):
            CompressedCohortStore(table, columns=[])

    def test_validates_min_age(self):
        table = make_table([np.arange(10)])
        with pytest.raises(StorageError):
            CompressedCohortStore(table, min_age=0)

    def test_covers(self, store):
        assert store.covers("a")
        assert not store.covers("b")


class TestDemotion:
    def test_demote_cold_uses_age_rule(self):
        table = make_table([np.arange(10)] * 4)  # epochs 0..3
        s = CompressedCohortStore(table, min_age=2)
        assert s.demote_cold(current_epoch=3) == 2  # epochs 0 and 1
        assert s.demoted_count == 2
        # Re-running at the same epoch is a no-op.
        assert s.demote_cold(current_epoch=3) == 0
        assert s.demote_cold(current_epoch=4) == 1  # epoch 2 goes cold

    def test_demote_is_idempotent(self, store):
        generation = store.generation
        assert store.demote(0) is False
        assert store.generation == generation

    def test_demote_skips_empty_cohorts(self):
        table = make_table([np.arange(10), np.empty(0, dtype=np.int64)])
        s = CompressedCohortStore(table, min_age=1)
        assert s.demote_cold(current_epoch=5) == 1
        assert s.demoted_count == 1

    def test_generation_bumps_on_demotion(self):
        table = make_table([np.arange(10), np.arange(10)])
        s = CompressedCohortStore(table, min_age=1)
        g0 = s.generation
        s.demote_cold(current_epoch=2)
        assert s.generation > g0

    def test_demoted_rows(self, store):
        assert store.demoted_rows == 100 + 100 + 120


class TestLookup:
    def test_block_at_exact_span(self, store):
        cohort = store.table.cohorts[1]
        found = store.block_at(cohort.start, cohort.stop, "a")
        assert found is not None
        ordinal, block = found
        assert ordinal == 1
        assert block.n_values == cohort.size

    def test_block_at_misses(self, store):
        cohort = store.table.cohorts[1]
        # Wrong stop, unknown start, uncovered column: all miss.
        assert store.block_at(cohort.start, cohort.stop - 1, "a") is None
        assert store.block_at(cohort.start + 1, cohort.stop, "a") is None
        assert store.block_at(cohort.start, cohort.stop, "b") is None

    def test_bounds_are_exact(self, store):
        for ordinal, cohort in enumerate(store.table.cohorts):
            window = store.table.values("a")[cohort.start : cohort.stop]
            assert store.bounds_at(ordinal, "a") == (
                int(window.min()),
                int(window.max()),
            )


class TestRangeMask:
    """Direct predicate evaluation must match the raw-window oracle."""

    PROBES = [
        (0, 1),                    # below every block
        (5, 10),                   # inside the rle block
        (9, 10),                   # single value
        (1_000_010, 1_000_050),    # inside the for block
        (3, 100),                  # covers the dict block
        (-(2**62), 2**62),         # huge span (full cover)
        (2**62, 2**63),            # above every block
    ]

    @pytest.mark.parametrize("low,high", PROBES)
    def test_matches_raw_oracle(self, store, low, high):
        for ordinal, cohort in enumerate(store.table.cohorts):
            window = store.table.values("a")[cohort.start : cohort.stop]
            expected = (window >= low) & (window < high)
            got = store.range_mask(ordinal, "a", low, high)
            assert got.dtype == bool
            assert np.array_equal(got, expected)

    def test_quick_reject_and_accept_skip_payload(self, store):
        before = store.stats()["blocks_pruned"]
        assert not store.range_mask(0, "a", 1_000, 2_000).any()  # reject
        assert store.range_mask(0, "a", 0, 1_000).all()          # accept
        assert store.stats()["blocks_pruned"] == before + 2

    def test_partial_probe_counts_direct(self, store):
        before = store.stats()["blocks_direct"]
        store.range_mask(0, "a", 6, 100)  # splits the {5, 9} rle block
        assert store.stats()["blocks_direct"] == before + 1

    def test_wide_domain_for_block(self):
        # A demoted cohort spanning the full int64 domain: the offset
        # shift must survive spreads >= 2**63 (the PR 9 bugfix) and the
        # upper bound may exceed the reference by the full span.
        table = make_table([[-(2**62), 0, 2**62]])
        s = CompressedCohortStore(table, min_age=1)
        s.demote_cold(current_epoch=2)
        window = table.values("a")
        for low, high in [
            (-(2**62), 2**62),
            (-(2**62), 2**62 + 1),
            (0, 2**62 + 1),
            (-(2**63), 2**63 - 1),
        ]:
            expected = (window >= low) & (window < high)
            assert np.array_equal(s.range_mask(0, "a", low, high), expected)


class TestDecode:
    def test_decode_round_trips(self, store):
        for ordinal, cohort in enumerate(store.table.cohorts):
            window = store.table.values("a")[cohort.start : cohort.stop]
            assert np.array_equal(store.decode(ordinal, "a"), window)


class TestDecodePenalty:
    def test_prices_demoted_ranges_only(self, store):
        cohort = store.table.cohorts[1]
        block = store.block_at(cohort.start, cohort.stop, "a")[1]
        factor = DECODE_FACTORS[block.codec_name]
        ranges = [(cohort.start, cohort.stop), (10_000, 10_100)]
        expected = cohort.size * (factor - 1.0)
        assert store.decode_penalty(ranges, "a") == pytest.approx(expected)

    def test_zero_without_demotions(self):
        table = make_table([np.arange(10)])
        s = CompressedCohortStore(table)
        assert s.decode_penalty([(0, 10)], "a") == 0.0


class TestAccounting:
    def test_byte_report(self, store):
        report = store.byte_report()
        assert report["demoted_cohorts"] == 3
        assert report["demoted_rows"] == store.demoted_rows
        assert report["compressed_nbytes"] == store.compressed_nbytes()
        assert report["raw_nbytes_covered"] == store.demoted_rows * 8
        assert 0 < report["ratio"] < 1  # these shapes all compress
        assert report["bytes_per_row"] < 8

    def test_empty_report(self):
        table = make_table([np.arange(10)])
        report = CompressedCohortStore(table).byte_report()
        assert report["demoted_cohorts"] == 0
        assert report["ratio"] == 1.0
        assert report["bytes_per_row"] == 0.0

    def test_stats_counts_codecs(self, store):
        stats = store.stats()
        assert sum(stats["codecs"].values()) == 3
        assert stats["columns"] == ["a"]
        assert stats["min_age"] == 1


class TestPersistence:
    def test_state_round_trip(self, store):
        records = store.state()
        restored = CompressedCohortStore(store.table, min_age=1)
        restored.load_state(records)
        assert restored.demoted_count == store.demoted_count
        assert restored.demoted_rows == store.demoted_rows
        assert restored.compressed_nbytes() == store.compressed_nbytes()
        for ordinal, cohort in enumerate(store.table.cohorts):
            assert np.array_equal(
                restored.decode(ordinal, "a"), store.decode(ordinal, "a")
            )
            assert restored.bounds_at(ordinal, "a") == store.bounds_at(
                ordinal, "a"
            )
            found = restored.block_at(cohort.start, cohort.stop, "a")
            assert found is not None
            window = store.table.values("a")[cohort.start : cohort.stop]
            expected = (window >= 5) & (window < 1_000_050)
            assert np.array_equal(
                restored.range_mask(ordinal, "a", 5, 1_000_050), expected
            )

    def test_load_state_bumps_generation(self, store):
        restored = CompressedCohortStore(store.table, min_age=1)
        g0 = restored.generation
        restored.load_state(store.state())
        assert restored.generation > g0
