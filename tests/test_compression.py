"""Tests for repro.compression: bitpack + codecs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro._util.errors import CompressionError
from repro.compression import (
    CODEC_NAMES,
    DictionaryCodec,
    FrameOfReferenceCodec,
    RawCodec,
    RleCodec,
    best_codec,
    bits_needed,
    make_codec,
    pack_ints,
    unpack_ints,
)

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class TestBitpack:
    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9

    def test_bits_needed_negative(self):
        with pytest.raises(CompressionError):
            bits_needed(-1)

    @pytest.mark.parametrize("bits", [1, 3, 7, 8, 13, 32, 63])
    def test_roundtrip_random(self, bits, rng):
        values = rng.integers(0, 1 << bits, 1000, dtype=np.uint64)
        packed = pack_ints(values, bits)
        assert packed.nbytes == int(np.ceil(1000 * bits / 8))
        out = unpack_ints(packed, bits, 1000)
        assert np.array_equal(out, values.astype(np.int64))

    def test_roundtrip_empty(self):
        assert pack_ints(np.empty(0, dtype=np.uint64), 4).size == 0
        assert unpack_ints(np.empty(0, dtype=np.uint8), 4, 0).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(CompressionError):
            pack_ints(np.array([8]), bits=3)

    def test_bad_bits(self):
        with pytest.raises(CompressionError):
            pack_ints(np.array([1]), bits=0)
        with pytest.raises(CompressionError):
            unpack_ints(np.array([0], dtype=np.uint8), bits=65, count=1)

    def test_negative_count(self):
        with pytest.raises(CompressionError):
            unpack_ints(np.array([0], dtype=np.uint8), bits=4, count=-1)


@pytest.mark.parametrize("codec_name", CODEC_NAMES)
class TestCodecContract:
    def test_roundtrip_random(self, codec_name, rng):
        codec = make_codec(codec_name)
        values = rng.integers(0, 10_000, 5000)
        block = codec.encode(values)
        assert block.codec_name == codec_name
        assert block.n_values == 5000
        assert np.array_equal(codec.decode(block), values)

    def test_roundtrip_empty(self, codec_name):
        codec = make_codec(codec_name)
        block = codec.encode(np.empty(0, dtype=np.int64))
        assert codec.decode(block).size == 0
        assert block.bytes_per_value == float("inf")

    def test_roundtrip_constant(self, codec_name):
        codec = make_codec(codec_name)
        values = np.full(1000, 42, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_roundtrip_negative_values(self, codec_name):
        codec = make_codec(codec_name)
        values = np.array([-100, -1, 0, 1, 100], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_rejects_wrong_block(self, codec_name):
        codec = make_codec(codec_name)
        other = [n for n in CODEC_NAMES if n != codec_name][0]
        block = make_codec(other).encode(np.arange(4))
        with pytest.raises(CompressionError):
            codec.decode(block)

    def test_rejects_2d(self, codec_name):
        with pytest.raises(CompressionError):
            make_codec(codec_name).encode(np.zeros((2, 2), dtype=np.int64))


class TestCompressionRatios:
    def test_rle_wins_on_runs(self):
        values = np.repeat(np.arange(10), 1000)
        block = RleCodec().encode(values)
        assert block.nbytes < 0.01 * RawCodec().encode(values).nbytes

    def test_rle_expands_on_random(self, rng):
        values = rng.integers(0, 1 << 40, 1000)
        assert RleCodec().encode(values).nbytes > RawCodec().encode(values).nbytes

    def test_dictionary_wins_on_low_cardinality(self, rng):
        values = rng.choice([3, 17, 99], size=10_000)
        block = DictionaryCodec().encode(values)
        # 2 bits/value + tiny dictionary.
        assert block.bytes_per_value < 0.3

    def test_for_wins_on_small_spread(self, rng):
        values = rng.integers(1_000_000, 1_000_100, 10_000)
        block = FrameOfReferenceCodec().encode(values)
        assert block.bytes_per_value < 1.0  # 7 bits each

    def test_best_codec_picks_minimum(self, rng):
        values = np.repeat(7, 10_000)
        best = best_codec(values)
        assert best.codec_name == "rle"
        for name in CODEC_NAMES:
            assert best.nbytes <= make_codec(name).encode(values).nbytes

    def test_compressed_nbytes_helper(self, rng):
        values = rng.integers(0, 100, 100)
        codec = FrameOfReferenceCodec()
        assert codec.compressed_nbytes(values) == codec.encode(values).nbytes


class TestWideDomainRegression:
    """Pinned repros for the wide-domain int64 crash (PR 9 bugfix).

    ``FrameOfReferenceCodec`` used to compute ``values - reference`` in
    int64; a block whose spread reached 2**63 wrapped and either tripped
    ``bits_needed``'s negative guard or died inside ``pack_ints`` with a
    misleading "does not fit in 1 bits".  ``best_codec`` then raised on
    perfectly valid input.
    """

    def test_for_roundtrips_wide_spread(self):
        # The original crash repro: spread is exactly 2**63.
        values = np.array([-(2**62), 2**62], dtype=np.int64)
        block = FrameOfReferenceCodec().encode(values)
        assert np.array_equal(FrameOfReferenceCodec().decode(block), values)

    def test_for_roundtrips_full_int64_domain(self):
        values = np.array([INT64_MIN, -1, 0, 1, INT64_MAX], dtype=np.int64)
        block = FrameOfReferenceCodec().encode(values)
        assert block.payload["bits"] == 64
        assert np.array_equal(FrameOfReferenceCodec().decode(block), values)

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    def test_every_codec_survives_extremes(self, codec_name):
        values = np.array(
            [INT64_MIN, INT64_MIN + 1, -(2**62), 0, 2**62, INT64_MAX],
            dtype=np.int64,
        )
        codec = make_codec(codec_name)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_best_codec_never_raises_on_wide_blocks(self):
        # The headline symptom: the chooser crashed on valid input.
        for values in (
            np.array([-(2**62), 2**62]),
            np.array([INT64_MIN, INT64_MAX]),
            np.array([INT64_MIN]),
            np.full(100, INT64_MAX),
        ):
            block = best_codec(values)
            codec = make_codec(block.codec_name)
            assert np.array_equal(codec.decode(block), values)

    def test_best_codec_raises_on_invalid_input(self):
        # Genuinely invalid input (not 1-D) still fails loudly rather
        # than being silently skipped by the per-codec try/except.
        with pytest.raises(CompressionError):
            best_codec(np.zeros((3, 3), dtype=np.int64))

    def test_best_codec_deterministic_ties(self):
        values = np.arange(1000, dtype=np.int64)
        names = {best_codec(values).codec_name for _ in range(5)}
        assert len(names) == 1

    def test_unpack_bits64_sign_wrap_is_checked(self):
        # A 64-bit code >= 2**63 cannot be represented as int64; the
        # old code wrapped it silently negative.  Now it raises unless
        # the caller asks for the full uint64 code domain.
        packed = pack_ints(np.array([2**63], dtype=np.uint64), bits=64)
        with pytest.raises(CompressionError, match="does not fit in int64"):
            unpack_ints(packed, bits=64, count=1)
        out = unpack_ints(packed, bits=64, count=1, dtype=np.uint64)
        assert out.dtype == np.uint64
        assert int(out[0]) == 2**63

    def test_unpack_bits64_in_range_still_int64(self):
        packed = pack_ints(np.array([INT64_MAX], dtype=np.uint64), bits=64)
        out = unpack_ints(packed, bits=64, count=1)
        assert out.dtype == np.int64
        assert int(out[0]) == INT64_MAX

    def test_pack_rejects_negative_signed_codes(self):
        with pytest.raises(CompressionError, match="non-negative"):
            pack_ints(np.array([-1], dtype=np.int64), bits=4)


# Full-domain int64 arrays, biased toward the extremes that used to
# crash the frame-of-reference encoder.
extreme_int64_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(0, 200),
    elements=st.one_of(
        st.integers(INT64_MIN, INT64_MAX),
        st.sampled_from(
            [INT64_MIN, INT64_MIN + 1, -(2**62), -1, 0, 1, 2**62, INT64_MAX]
        ),
    ),
)


class TestCodecProperties:
    """Hypothesis suites over the full int64 domain (PR 9)."""

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    @given(values=extreme_int64_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_identity(self, codec_name, values):
        codec = make_codec(codec_name)
        block = codec.encode(values)
        out = codec.decode(block)
        assert out.dtype == np.int64
        assert np.array_equal(out, values)

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    @given(values=extreme_int64_arrays)
    @settings(max_examples=40, deadline=None)
    def test_nbytes_accounts_for_payload(self, codec_name, values):
        block = make_codec(codec_name).encode(values)
        payload = sum(
            v.nbytes
            for v in block.payload.values()
            if isinstance(v, np.ndarray)
        )
        assert block.nbytes >= payload
        assert block.n_values == values.size
        if values.size:
            assert block.bytes_per_value == block.nbytes / values.size

    @given(values=extreme_int64_arrays)
    @settings(max_examples=40, deadline=None)
    def test_best_codec_never_raises_on_valid_int64(self, values):
        block = best_codec(values)
        codec = make_codec(block.codec_name)
        assert np.array_equal(codec.decode(block), values)
        for name in CODEC_NAMES:
            try:
                other = make_codec(name).encode(values)
            except CompressionError:
                continue
            assert block.nbytes <= other.nbytes

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    @given(
        value=st.integers(INT64_MIN, INT64_MAX),
        n=st.integers(1, 64),
        repeats=st.integers(2, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_bytes_per_value_monotone_on_repeats(
        self, codec_name, value, n, repeats
    ):
        # Repeating a block never worsens per-value cost: fixed header
        # and dictionary/reference overheads amortise.
        codec = make_codec(codec_name)
        base = np.full(n, value, dtype=np.int64)
        small = codec.encode(base)
        large = codec.encode(np.tile(base, repeats))
        assert large.bytes_per_value <= small.bytes_per_value + 1e-9


class TestRegistry:
    def test_make_codec(self):
        for name in CODEC_NAMES:
            assert make_codec(name).name == name

    def test_unknown(self):
        with pytest.raises(CompressionError):
            make_codec("zstd")
