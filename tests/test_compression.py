"""Tests for repro.compression: bitpack + codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import CompressionError
from repro.compression import (
    CODEC_NAMES,
    DictionaryCodec,
    FrameOfReferenceCodec,
    RawCodec,
    RleCodec,
    best_codec,
    bits_needed,
    make_codec,
    pack_ints,
    unpack_ints,
)


class TestBitpack:
    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9

    def test_bits_needed_negative(self):
        with pytest.raises(CompressionError):
            bits_needed(-1)

    @pytest.mark.parametrize("bits", [1, 3, 7, 8, 13, 32, 63])
    def test_roundtrip_random(self, bits, rng):
        values = rng.integers(0, 1 << bits, 1000, dtype=np.uint64)
        packed = pack_ints(values, bits)
        assert packed.nbytes == int(np.ceil(1000 * bits / 8))
        out = unpack_ints(packed, bits, 1000)
        assert np.array_equal(out, values.astype(np.int64))

    def test_roundtrip_empty(self):
        assert pack_ints(np.empty(0, dtype=np.uint64), 4).size == 0
        assert unpack_ints(np.empty(0, dtype=np.uint8), 4, 0).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(CompressionError):
            pack_ints(np.array([8]), bits=3)

    def test_bad_bits(self):
        with pytest.raises(CompressionError):
            pack_ints(np.array([1]), bits=0)
        with pytest.raises(CompressionError):
            unpack_ints(np.array([0], dtype=np.uint8), bits=65, count=1)

    def test_negative_count(self):
        with pytest.raises(CompressionError):
            unpack_ints(np.array([0], dtype=np.uint8), bits=4, count=-1)


@pytest.mark.parametrize("codec_name", CODEC_NAMES)
class TestCodecContract:
    def test_roundtrip_random(self, codec_name, rng):
        codec = make_codec(codec_name)
        values = rng.integers(0, 10_000, 5000)
        block = codec.encode(values)
        assert block.codec_name == codec_name
        assert block.n_values == 5000
        assert np.array_equal(codec.decode(block), values)

    def test_roundtrip_empty(self, codec_name):
        codec = make_codec(codec_name)
        block = codec.encode(np.empty(0, dtype=np.int64))
        assert codec.decode(block).size == 0
        assert block.bytes_per_value == float("inf")

    def test_roundtrip_constant(self, codec_name):
        codec = make_codec(codec_name)
        values = np.full(1000, 42, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_roundtrip_negative_values(self, codec_name):
        codec = make_codec(codec_name)
        values = np.array([-100, -1, 0, 1, 100], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_rejects_wrong_block(self, codec_name):
        codec = make_codec(codec_name)
        other = [n for n in CODEC_NAMES if n != codec_name][0]
        block = make_codec(other).encode(np.arange(4))
        with pytest.raises(CompressionError):
            codec.decode(block)

    def test_rejects_2d(self, codec_name):
        with pytest.raises(CompressionError):
            make_codec(codec_name).encode(np.zeros((2, 2), dtype=np.int64))


class TestCompressionRatios:
    def test_rle_wins_on_runs(self):
        values = np.repeat(np.arange(10), 1000)
        block = RleCodec().encode(values)
        assert block.nbytes < 0.01 * RawCodec().encode(values).nbytes

    def test_rle_expands_on_random(self, rng):
        values = rng.integers(0, 1 << 40, 1000)
        assert RleCodec().encode(values).nbytes > RawCodec().encode(values).nbytes

    def test_dictionary_wins_on_low_cardinality(self, rng):
        values = rng.choice([3, 17, 99], size=10_000)
        block = DictionaryCodec().encode(values)
        # 2 bits/value + tiny dictionary.
        assert block.bytes_per_value < 0.3

    def test_for_wins_on_small_spread(self, rng):
        values = rng.integers(1_000_000, 1_000_100, 10_000)
        block = FrameOfReferenceCodec().encode(values)
        assert block.bytes_per_value < 1.0  # 7 bits each

    def test_best_codec_picks_minimum(self, rng):
        values = np.repeat(7, 10_000)
        best = best_codec(values)
        assert best.codec_name == "rle"
        for name in CODEC_NAMES:
            assert best.nbytes <= make_codec(name).encode(values).nbytes

    def test_compressed_nbytes_helper(self, rng):
        values = rng.integers(0, 100, 100)
        codec = FrameOfReferenceCodec()
        assert codec.compressed_nbytes(values) == codec.encode(values).nbytes


class TestRegistry:
    def test_make_codec(self):
        for name in CODEC_NAMES:
            assert make_codec(name).name == name

    def test_unknown(self):
        with pytest.raises(CompressionError):
            make_codec("zstd")
