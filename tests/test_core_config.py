"""Tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro import SimulationConfig
from repro._util.errors import ConfigError


class TestDefaults:
    def test_paper_baseline(self):
        config = SimulationConfig()
        assert config.dbsize == 1000
        assert config.update_fraction == 0.20
        assert config.epochs == 10
        assert config.queries_per_epoch == 1000
        assert config.batch_size == 200
        assert config.total_insertions == 3000

    def test_high_volatility(self):
        config = SimulationConfig(update_fraction=0.80)
        assert config.batch_size == 800
        assert config.total_insertions == 9000


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dbsize": 0},
            {"update_fraction": 0.0},
            {"update_fraction": 1.5},
            {"epochs": 0},
            {"queries_per_epoch": -1},
            {"histogram_bins": -1},
            {"column": ""},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises((ConfigError, ValueError)):
            SimulationConfig(**kwargs)

    def test_rejects_sub_tuple_batches(self):
        with pytest.raises(ValueError):
            SimulationConfig(dbsize=2, update_fraction=0.1)

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(AttributeError):
            config.dbsize = 5


class TestWith:
    def test_with_replaces(self):
        config = SimulationConfig().with_(update_fraction=0.8, epochs=30)
        assert config.update_fraction == 0.8
        assert config.epochs == 30
        assert config.dbsize == 1000

    def test_with_validates(self):
        with pytest.raises((ConfigError, ValueError)):
            SimulationConfig().with_(dbsize=-5)

    def test_with_empty_is_copy(self):
        config = SimulationConfig()
        assert config.with_() == config


class TestPlanKnob:
    def test_default_plan_is_auto(self):
        from repro.core.config import default_plan

        assert default_plan() == "auto"
        assert SimulationConfig().plan == "auto"

    def test_plan_validated(self):
        import pytest as _pytest

        from repro._util.errors import ConfigError

        with _pytest.raises(ConfigError):
            SimulationConfig(plan="turbo")
        assert SimulationConfig(plan="index").plan == "index"

    def test_set_default_plan_round_trip(self):
        from repro._util.errors import ConfigError
        from repro.core.config import default_plan, set_default_plan

        import pytest as _pytest

        before = default_plan()
        try:
            assert set_default_plan("zonemap") == "zonemap"
            assert SimulationConfig().plan == "zonemap"
            with _pytest.raises(ConfigError):
                set_default_plan("turbo")
        finally:
            set_default_plan(before)


class TestWorkersAndRebalanceKnobs:
    def test_defaults(self):
        from repro.core.config import default_rebalance, default_workers

        assert default_workers() == 1
        assert default_rebalance() == "hits"
        config = SimulationConfig()
        assert config.workers == 1
        assert config.rebalance == "hits"

    def test_validation(self):
        with pytest.raises((ConfigError, ValueError)):
            SimulationConfig(workers=0)
        with pytest.raises((ConfigError, ValueError)):
            SimulationConfig(rebalance="entropy")
        assert SimulationConfig(workers=8, rebalance="adaptive").workers == 8

    def test_set_default_round_trips(self):
        from repro.core.config import (
            default_rebalance,
            default_workers,
            set_default_rebalance,
            set_default_workers,
        )

        before = (default_workers(), default_rebalance())
        try:
            assert set_default_workers(4) == 4
            assert set_default_rebalance("adaptive") == "adaptive"
            config = SimulationConfig()
            assert (config.workers, config.rebalance) == (4, "adaptive")
            with pytest.raises(ConfigError):
                set_default_workers(0)
            with pytest.raises(ConfigError):
                set_default_rebalance("entropy")
        finally:
            set_default_workers(before[0])
            set_default_rebalance(before[1])


class TestCrossQueryKnob:
    def test_default_and_config_field(self):
        from repro.core.config import default_cross_query

        assert default_cross_query() == "join:s1,s2:on=value"
        assert SimulationConfig().cross_query == "join:s1,s2:on=value"

    def test_grammar_validated(self):
        from repro._util.errors import QueryError

        with pytest.raises(QueryError):
            SimulationConfig(cross_query="scan:s1,s2")
        with pytest.raises(QueryError):
            SimulationConfig(cross_query="join:s1")
        bounded = SimulationConfig(cross_query="union:a,b:low=0,high=9")
        assert bounded.cross_query == "union:a,b:low=0,high=9"

    def test_set_default_round_trips(self):
        from repro._util.errors import QueryError
        from repro.core.config import (
            default_cross_query,
            set_default_cross_query,
        )

        before = default_cross_query()
        try:
            assert (
                set_default_cross_query("join:x,y:on=epoch")
                == "join:x,y:on=epoch"
            )
            assert SimulationConfig().cross_query == "join:x,y:on=epoch"
            with pytest.raises(QueryError):
                set_default_cross_query("merge:x,y")
            # A failed set leaves the default untouched.
            assert default_cross_query() == "join:x,y:on=epoch"
        finally:
            set_default_cross_query(before)


class TestExecBatchKnob:
    def test_default_and_config_field(self):
        from repro.core.config import default_batch_size

        assert default_batch_size() == 4096
        config = SimulationConfig()
        assert config.exec_batch == 4096
        # Distinct knobs: exec_batch is the streaming batch size, the
        # batch_size *property* stays the paper's derived update batch.
        assert config.batch_size == 200

    def test_validation(self):
        with pytest.raises((ConfigError, ValueError)):
            SimulationConfig(exec_batch=0)
        assert SimulationConfig(exec_batch=1).exec_batch == 1

    def test_set_default_round_trips(self):
        from repro.core.config import (
            default_batch_size,
            set_default_batch_size,
        )

        before = default_batch_size()
        try:
            assert set_default_batch_size(256) == 256
            assert SimulationConfig().exec_batch == 256
            with pytest.raises(ConfigError):
                set_default_batch_size(0)
            # A failed set leaves the default untouched.
            assert default_batch_size() == 256
        finally:
            set_default_batch_size(before)


class TestCompressKnob:
    def test_default_and_config_field(self):
        from repro.core.config import COMPRESS_MODES, default_compress

        assert COMPRESS_MODES == ("off", "on")
        assert default_compress() == "off"
        assert SimulationConfig().compress == "off"

    def test_validation(self):
        assert SimulationConfig(compress="on").compress == "on"
        with pytest.raises(ConfigError):
            SimulationConfig(compress="zstd")

    def test_set_default_round_trips(self):
        from repro.core.config import default_compress, set_default_compress

        before = default_compress()
        try:
            assert set_default_compress("on") == "on"
            assert SimulationConfig().compress == "on"
            with pytest.raises(ConfigError):
                set_default_compress("lz4")
            # A failed set leaves the default untouched.
            assert default_compress() == "on"
        finally:
            set_default_compress(before)
