"""Tests for repro.core.database: the AmnesiaDatabase facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AmnesiaDatabase
from repro._util.errors import ConfigError, QueryError
from repro.amnesia import FifoAmnesia, PrivacyRetentionWrapper, UniformAmnesia


class TestBudgetEnforcement:
    def test_insert_below_budget_keeps_all(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(50)})
        assert db.active_count == 50
        assert db.total_rows == 50

    def test_insert_above_budget_forgets_down(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(150)})
        assert db.active_count == 100
        assert db.total_rows == 150

    def test_fifo_keeps_newest(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(150)})
        assert db.range_query("a", 0, 50).rf == 0
        assert db.range_query("a", 50, 150).rf == 100

    def test_epoch_advances_per_insert(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(10)})
        db.insert({"a": np.arange(10)})
        assert db.epoch == 2
        assert len(db.table.cohorts) == 2

    def test_budget_validated(self):
        with pytest.raises(ConfigError):
            AmnesiaDatabase(budget=0, policy=FifoAmnesia())


class TestInsertValidation:
    def test_lossy_float_insert_rejected(self):
        """The old path silently truncated 2.7 to 2; now it refuses —
        and atomically: no epoch advance, no partial rows."""
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        with pytest.raises(QueryError, match="without loss"):
            db.insert({"a": np.array([1.0, 2.7])})
        assert db.total_rows == 0
        assert db.epoch == 0

    def test_integer_valued_floats_accepted(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.array([1.0, 2.0, 3.0])})
        assert db.total_rows == 3

    def test_infinite_values_rejected(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        with pytest.raises(QueryError, match="finite"):
            db.insert({"a": np.array([1.0, np.inf])})

    def test_huge_uint64_rejected_not_wrapped(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        with pytest.raises(QueryError):
            db.insert({"a": np.array([2**64 - 1], dtype=np.uint64)})


class TestQueries:
    def test_range_query_precision(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(200)})
        result = db.range_query("a", 90, 110)
        assert result.rf == 10  # 100..109 survive
        assert result.mf == 10
        assert result.precision == 0.5

    def test_aggregate_whole_table(self):
        db = AmnesiaDatabase(budget=10, policy=FifoAmnesia())
        db.insert({"a": np.arange(20)})
        result = db.aggregate("avg", "a")
        assert result.amnesiac_value == pytest.approx(14.5)
        assert result.oracle_value == pytest.approx(9.5)

    def test_aggregate_windowed(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(100)})
        result = db.aggregate("sum", "a", 0, 10)
        assert result.amnesiac_value == 45.0
        assert result.is_exact()

    def test_aggregate_window_requires_both_bounds(self):
        db = AmnesiaDatabase(budget=10, policy=FifoAmnesia())
        db.insert({"a": np.arange(5)})
        with pytest.raises(ConfigError):
            db.aggregate("avg", "a", low=3)

    def test_queries_feed_access_counts(self):
        db = AmnesiaDatabase(budget=100, policy=FifoAmnesia())
        db.insert({"a": np.arange(100)})
        db.range_query("a", 0, 10)
        assert db.table.access_counts()[:10].sum() == 10


class TestStats:
    def test_stats_snapshot(self):
        db = AmnesiaDatabase(budget=50, policy=UniformAmnesia())
        db.insert({"a": np.arange(80)})
        stats = db.stats()
        assert stats["budget"] == 50
        assert stats["active_rows"] == 50
        assert stats["total_rows"] == 80
        assert stats["forgotten_rows"] == 30
        assert stats["policy"] == "uniform"
        assert stats["epoch"] == 1

    def test_repr(self):
        db = AmnesiaDatabase(budget=10, policy=FifoAmnesia())
        assert "fifo" in repr(db)


class TestPrivacyIntegration:
    def test_purge_runs_even_under_budget(self):
        policy = PrivacyRetentionWrapper(FifoAmnesia(), max_age_epochs=2)
        db = AmnesiaDatabase(budget=1000, policy=policy)
        for _ in range(4):
            db.insert({"a": np.arange(10)})
            active = db.table.active_positions()
            ages = db.epoch - db.table.insert_epochs()[active]
            assert ages.max() < 2

    def test_multi_column(self):
        db = AmnesiaDatabase(
            budget=10, policy=FifoAmnesia(), columns=("k", "v")
        )
        db.insert({"k": np.arange(20), "v": np.arange(20) * 10})
        result = db.range_query("v", 100, 200)
        assert result.rf == 10
