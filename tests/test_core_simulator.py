"""Tests for repro.core.simulator: the paper's experimental loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AmnesiaSimulator, SimulationConfig
from repro._util.errors import ConfigError
from repro.amnesia import (
    FifoAmnesia,
    PrivacyRetentionWrapper,
    UniformAmnesia,
)
from repro.datagen import SerialDistribution, UniformDistribution


def make_sim(policy=None, **config_kwargs):
    defaults = {"dbsize": 200, "epochs": 3, "queries_per_epoch": 20}
    defaults.update(config_kwargs)
    return AmnesiaSimulator(
        SimulationConfig(**defaults),
        UniformDistribution(1000),
        policy or UniformAmnesia(),
    )


class TestLoop:
    def test_initial_load(self):
        sim = make_sim()
        report = sim.load_initial()
        assert report.epoch == 0
        assert report.active_rows == 200
        assert report.precision is None
        assert sim.current_epoch == 0

    def test_double_load_rejected(self):
        sim = make_sim()
        sim.load_initial()
        with pytest.raises(ConfigError):
            sim.load_initial()

    def test_step_before_load_rejected(self):
        with pytest.raises(ConfigError):
            make_sim().step()

    def test_budget_invariant_every_epoch(self):
        sim = make_sim()
        report = sim.run()
        for epoch_report in report.epochs:
            assert epoch_report.active_rows == 200

    def test_epoch_accounting(self):
        sim = make_sim()
        report = sim.run()
        assert [r.epoch for r in report.epochs] == [0, 1, 2, 3]
        for r in report.epochs[1:]:
            assert r.inserted == 40  # 200 * 0.2
            assert r.forgotten == 40
            assert r.precision is not None
            assert 0.0 <= r.precision.error_margin <= 1.0

    def test_total_rows_grow(self):
        sim = make_sim()
        sim.run()
        assert sim.table.total_rows == 200 + 3 * 40

    def test_run_is_idempotent_continuation(self):
        sim = make_sim()
        sim.load_initial()
        sim.step()
        report = sim.run()  # continues from epoch 1
        assert len(report.epochs) == 4

    def test_map_snapshots(self):
        sim = make_sim()
        sim.run()
        assert sim.map.epochs == [0, 1, 2, 3]
        final = sim.map.final_row()
        assert set(final) == {0, 1, 2, 3}
        sizes = {0: 200, 1: 40, 2: 40, 3: 40}
        total_active = sum(final[e] * sizes[e] for e in final)
        assert round(total_active) == 200


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = make_sim(seed=99).run()
        b = make_sim(seed=99).run()
        assert a.precision_series() == b.precision_series()
        assert [r.active_rows for r in a.epochs] == [
            r.active_rows for r in b.epochs
        ]

    def test_different_seed_different_results(self):
        a = make_sim(seed=1).run()
        b = make_sim(seed=2).run()
        assert a.precision_series() != b.precision_series()

    def test_policy_change_does_not_perturb_data(self):
        a = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=2, queries_per_epoch=0, seed=5),
            SerialDistribution(),
            FifoAmnesia(),
        )
        b = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=2, queries_per_epoch=0, seed=5),
            SerialDistribution(),
            UniformAmnesia(),
        )
        a.run()
        b.run()
        assert np.array_equal(a.table.values("a"), b.table.values("a"))


class TestConfigurationVariants:
    def test_no_queries_mode(self):
        sim = make_sim(queries_per_epoch=0)
        report = sim.run()
        assert all(r.precision is None for r in report.epochs)

    def test_divergence_disabled(self):
        sim = make_sim(histogram_bins=0)
        report = sim.run()
        assert all(r.divergence_js is None for r in report.epochs)

    def test_divergence_enabled(self):
        sim = make_sim()
        report = sim.run()
        assert all(
            r.divergence_js is not None and r.divergence_js >= 0.0
            for r in report.epochs
        )

    def test_custom_workload(self):
        from repro.query import AggregateQueryGenerator

        sim = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=2, queries_per_epoch=5),
            UniformDistribution(100),
            UniformAmnesia(),
            workload=AggregateQueryGenerator("a", rng=3),
        )
        report = sim.run()
        last = report.epochs[-1].precision
        assert last.n_aggregate == 5
        assert last.aggregate_mean_precision is not None

    def test_disposition_attached(self):
        from repro.lifecycle import SummaryDisposition

        disposition = SummaryDisposition()
        sim = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=2, queries_per_epoch=0),
            UniformDistribution(100),
            UniformAmnesia(),
            disposition=disposition,
        )
        sim.run()
        assert disposition.store.tuple_count == sim.table.forgotten_count


class TestPrivacyOvershoot:
    def test_overshoot_dips_below_budget_then_recovers(self):
        policy = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=2)
        sim = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=4, queries_per_epoch=0),
            UniformDistribution(100),
            policy,
        )
        report = sim.run()
        actives = [r.active_rows for r in report.epochs]
        # The epoch-2 purge wipes the whole initial cohort: a visible dip.
        assert min(actives) < 100
        # And never above budget.
        assert max(actives) <= 100

    def test_no_tuple_outlives_the_limit(self):
        policy = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=2)
        sim = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=5, queries_per_epoch=0),
            UniformDistribution(100),
            policy,
        )
        sim.load_initial()
        while sim.current_epoch < 5:
            sim.step()
            active = sim.table.active_positions()
            ages = sim.current_epoch - sim.table.insert_epochs()[active]
            assert ages.max() < 2
