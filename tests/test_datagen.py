"""Tests for repro.datagen: distributions and update streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.datagen import (
    DISTRIBUTION_NAMES,
    NormalDistribution,
    SerialDistribution,
    UniformDistribution,
    UpdateStream,
    ZipfianDistribution,
    make_distribution,
)
from repro.stats import top_share


class TestSerial:
    def test_monotone_and_stateful(self, rng):
        dist = SerialDistribution()
        first = dist.sample(5, rng)
        second = dist.sample(5, rng)
        assert first.tolist() == [0, 1, 2, 3, 4]
        assert second.tolist() == [5, 6, 7, 8, 9]

    def test_reset(self, rng):
        dist = SerialDistribution(start=10)
        dist.sample(3, rng)
        dist.reset()
        assert dist.sample(1, rng)[0] == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            SerialDistribution(start=-1)


class TestUniform:
    def test_bounds_and_coverage(self, rng):
        dist = UniformDistribution(domain=100)
        values = dist.sample(10_000, rng)
        assert values.min() >= 0 and values.max() <= 100
        # With 10k draws over 101 values, all must appear.
        assert np.unique(values).size == 101

    def test_mean_near_centre(self, rng):
        values = UniformDistribution(domain=1000).sample(50_000, rng)
        assert abs(values.mean() - 500) < 10


class TestNormal:
    def test_bounds_and_shape(self, rng):
        dist = NormalDistribution(domain=10_000)
        values = dist.sample(50_000, rng)
        assert values.min() >= 0 and values.max() <= 10_000
        assert abs(values.mean() - 5_000) < 50
        # Sigma = 20% of domain (slightly reduced by clipping).
        assert 1_800 < values.std() < 2_100

    def test_sigma_fraction_validated(self):
        with pytest.raises(ConfigError):
            NormalDistribution(sigma_fraction=0.0)
        with pytest.raises(ConfigError):
            NormalDistribution(sigma_fraction=1.5)


class TestZipfian:
    def test_bounds(self, rng):
        values = ZipfianDistribution(domain=1000).sample(10_000, rng)
        assert values.min() >= 0 and values.max() <= 1000

    def test_pareto_concentration(self, rng):
        """The 80-20 rule the paper cites: top values dominate."""
        values = ZipfianDistribution(domain=10_000).sample(50_000, rng)
        assert top_share(values, 0.2) > 0.75

    def test_theta_controls_skew(self, rng):
        flat = ZipfianDistribution(domain=1000, theta=0.5).sample(20_000, rng)
        steep = ZipfianDistribution(domain=1000, theta=2.0).sample(
            20_000, np.random.default_rng(12345)
        )
        assert top_share(steep, 0.05) > top_share(flat, 0.05)

    def test_permutation_scatters_hot_values(self, rng):
        """Dominant values are *random* domain points, not just 0,1,2..."""
        dist = ZipfianDistribution(domain=10_000, permutation_seed=3)
        values = dist.sample(20_000, rng)
        hot = np.bincount(values, minlength=10_001).argmax()
        assert hot > 100  # vanishingly unlikely without permutation

    def test_no_permutation_mode(self, rng):
        dist = ZipfianDistribution(domain=1000, permutation_seed=None)
        values = dist.sample(20_000, rng)
        assert np.bincount(values, minlength=1001).argmax() == 0

    def test_rank_probabilities_sum_to_one(self):
        pmf = ZipfianDistribution(domain=100).rank_probabilities()
        assert pmf.size == 101
        assert abs(pmf.sum() - 1.0) < 1e-9
        assert np.all(np.diff(pmf) <= 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianDistribution(theta=0.0)
        with pytest.raises(ConfigError):
            ZipfianDistribution(domain=1 << 25)


class TestFactory:
    def test_all_names(self):
        for name in DISTRIBUTION_NAMES:
            assert make_distribution(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_distribution("exotic")

    def test_kwargs_forwarded(self):
        dist = make_distribution("zipfian", domain=50, theta=1.5)
        assert dist.theta == 1.5
        assert dist.domain == 50

    def test_sample_validates_n(self, rng):
        with pytest.raises(ConfigError):
            make_distribution("uniform").sample(0, rng)


class TestUpdateStream:
    def test_batches(self):
        stream = UpdateStream(
            {"k": SerialDistribution(), "v": UniformDistribution(10)}, rng=1
        )
        batch = stream.next_batch(4)
        assert set(batch) == {"k", "v"}
        assert batch["k"].tolist() == [0, 1, 2, 3]
        assert stream.batches_produced == 1
        assert stream.rows_produced == 4

    def test_reset_restores_serial(self):
        stream = UpdateStream({"k": SerialDistribution()}, rng=1)
        stream.next_batch(3)
        stream.reset(rng=1)
        assert stream.next_batch(1)["k"][0] == 0
        assert stream.batches_produced == 1

    def test_requires_columns(self):
        with pytest.raises(ConfigError):
            UpdateStream({})

    def test_column_names(self):
        stream = UpdateStream({"a": UniformDistribution(5)}, rng=0)
        assert stream.column_names == ("a",)
