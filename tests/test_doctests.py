"""Run the doctest examples embedded in the public API docstrings.

Docstrings are part of the deliverable; if an example in one rots, that
is a documentation bug this test catches.
"""

from __future__ import annotations

import doctest

import pytest

import repro._util.rng
import repro._util.validation
import repro.amnesia.decay
import repro.amnesia.registry
import repro.amnesia.sampling
import repro.compression.bitpack
import repro.coldstore.store
import repro.core.config
import repro.core.database
import repro.core.simulator
import repro.datagen.distributions
import repro.datagen.streams
import repro.indexes.brin
import repro.indexes.hash_index
import repro.indexes.sorted_index
import repro.integrity.constraints
import repro.lifecycle.executor
import repro.metrics.maps
import repro.metrics.precision
import repro.partitioning.partitioned
import repro.plotting.heatmap
import repro.plotting.linechart
import repro.plotting.tables
import repro.query.executor
import repro.query.generators
import repro.query.plans
import repro.query.predicates
import repro.stats.histograms
import repro.stats.moments
import repro.stats.table_stats
import repro.storage.bitmap
import repro.storage.catalog
import repro.storage.cohorts
import repro.storage.column
import repro.storage.io
import repro.storage.table
import repro.storage.vectors
import repro.summaries.histogram_summary
import repro.summaries.summary

MODULES = [
    repro._util.rng,
    repro._util.validation,
    repro.amnesia.decay,
    repro.amnesia.registry,
    repro.amnesia.sampling,
    repro.compression.bitpack,
    repro.coldstore.store,
    repro.core.config,
    repro.core.database,
    repro.core.simulator,
    repro.datagen.distributions,
    repro.datagen.streams,
    repro.indexes.brin,
    repro.indexes.hash_index,
    repro.indexes.sorted_index,
    repro.integrity.constraints,
    repro.lifecycle.executor,
    repro.metrics.maps,
    repro.metrics.precision,
    repro.partitioning.partitioned,
    repro.plotting.heatmap,
    repro.plotting.linechart,
    repro.plotting.tables,
    repro.query.executor,
    repro.query.generators,
    repro.query.plans,
    repro.query.predicates,
    repro.stats.histograms,
    repro.stats.moments,
    repro.stats.table_stats,
    repro.storage.bitmap,
    repro.storage.catalog,
    repro.storage.cohorts,
    repro.storage.column,
    repro.storage.io,
    repro.storage.table,
    repro.storage.vectors,
    repro.summaries.histogram_summary,
    repro.summaries.summary,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False, report=True)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}"
    )
