"""Every example script must run clean (they are part of the API surface)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Fast examples run in full; paper_figures is exercised by benchmarks.
FAST_EXAMPLES = [
    "quickstart.py",
    "streaming_sensor.py",
    "retention_compliance.py",
    "tiered_archive.py",
    "adaptive_partitions.py",
    "sharded_explain.py",
    "parallel_shards.py",
    "cross_table_join.py",
    "histogram_planning.py",
    "concurrent_ingest.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_examples_exist():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "paper_figures.py" in present
