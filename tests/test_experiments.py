"""Smoke + shape tests for the experiment harness (small sizes).

The benchmarks assert the paper's shapes at full size; these tests
verify the harness machinery itself — structure of results, determinism
and rendering — at sizes small enough for the unit suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    default_config,
    run_coldstore_economics,
    run_compression_budget,
    run_dispositions,
    run_figure1,
    run_figure2,
    run_figure3,
    run_once,
    run_selectivity,
    run_volatility,
    sweep_policies,
)


class TestRunner:
    def test_default_config_is_paper_baseline(self):
        config = default_config()
        assert config.dbsize == 1000
        assert config.update_fraction == 0.20

    def test_default_config_overrides(self):
        config = default_config(dbsize=50, epochs=2)
        assert config.dbsize == 50

    def test_run_once_returns_simulator_and_report(self):
        config = default_config(dbsize=50, epochs=2, queries_per_epoch=5)
        simulator, report = run_once(config, "uniform", "fifo")
        assert simulator.table.active_count == 50
        assert report.policy_name == "fifo"
        assert report.distribution_name == "uniform"
        assert len(report.epochs) == 3

    def test_sweep_shares_data_stream(self):
        config = default_config(dbsize=50, epochs=2, queries_per_epoch=0)
        runs = sweep_policies(config, "uniform", ("fifo", "uniform"))
        a = runs["fifo"][0].table.values("a")
        b = runs["uniform"][0].table.values("a")
        assert np.array_equal(a, b)

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "F1", "F2", "F3", "T1", "T2", "T3",
            "A1", "A2", "A2b", "A3", "A4", "C1", "C2", "I1",
            "X1", "X2", "X3", "X4", "X5",
        }


class TestFigure1Small:
    def test_structure_and_render(self):
        result = run_figure1(dbsize=100, epochs=3, seed=1)
        assert result.experiment_id == "F1"
        maps = result.data["cohort_activity"]
        assert set(maps) == {"fifo", "uniform", "ante", "area"}
        for fractions in maps.values():
            assert len(fractions) == 4
        rendered = result.render()
        assert "F1" in rendered and "fifo" in rendered

    def test_deterministic(self):
        a = run_figure1(dbsize=100, epochs=3, seed=5)
        b = run_figure1(dbsize=100, epochs=3, seed=5)
        assert a.data == b.data


class TestFigure2Small:
    def test_structure(self):
        result = run_figure2(
            dbsize=100, epochs=2, queries_per_epoch=50, seed=1
        )
        maps = result.data["cohort_activity"]
        assert set(maps) == {"serial", "uniform", "normal", "zipfian"}


class TestFigure3Small:
    def test_structure(self):
        result = run_figure3(
            dbsize=100,
            epochs=3,
            queries_per_epoch=30,
            seed=1,
            distributions=("uniform",),
            policies=("fifo", "rot"),
        )
        series = result.data["precision"]["uniform"]
        assert set(series) == {"fifo", "rot"}
        assert len(series["fifo"]) == 3
        assert all(0.0 <= v <= 1.0 for v in series["fifo"])


class TestTableExperimentsSmall:
    def test_volatility_structure(self):
        result = run_volatility(
            dbsize=100, epochs=2, queries_per_epoch=20, seed=1,
            fractions=(0.1, 0.5), policies=("fifo",),
        )
        assert set(result.data["precision"]) == {"0.1", "0.5"}

    def test_selectivity_structure(self):
        result = run_selectivity(
            dbsize=100, epochs=2, queries_per_epoch=20, seed=1,
            selectivities=(0.01, 0.1), policies=("uniform",),
        )
        assert set(result.data["final_precision"]["uniform"]) == {0.01, 0.1}

    def test_coldstore_structure(self):
        result = run_coldstore_economics(dbsize=100, epochs=2, seed=1)
        data = result.data["dispositions"]
        assert data["delete"]["usd_per_tb_year"] == 0.0
        assert data["cold storage"]["retention"] == "full (on request)"

    def test_compression_structure(self):
        result = run_compression_budget(
            budget_bytes=4096, batch_tuples=50, epochs=2,
            sample_size=2048, seed=1, distributions=("uniform",),
        )
        facts = result.data["uniform"]
        assert facts["capacity_best"] > facts["capacity_raw"]

    def test_dispositions_structure(self):
        result = run_dispositions(
            dbsize=200, epochs=2, seed=1, n_probe_queries=5
        )
        assert result.data["plans"]["scan (stop-indexing)"]["recall"] == 1.0
        assert result.data["aggregates"]["avg"]["with_summaries_error"] < 1e-9


class TestExtensionExperimentsSmall:
    def test_decay_comparison(self):
        from repro.experiments import run_decay_comparison

        result = run_decay_comparison(
            dbsize=100, epochs=3, queries_per_epoch=50, seed=1
        )
        by_policy = result.data["by_policy"]
        assert set(by_policy) == {"uniform", "rot", "ebbinghaus"}
        assert all(0.0 <= v["final_E"] <= 1.0 for v in by_policy.values())

    def test_adaptive_partitioning(self):
        from repro.experiments import run_adaptive_partitioning

        result = run_adaptive_partitioning(
            total_budget=100, batches=4, batch_size=100, seed=1
        )
        assert 0.0 <= result.data["static"] <= 1.0
        assert 0.0 <= result.data["adaptive"] <= 1.0

    def test_referential_integrity(self):
        from repro.experiments import run_referential_integrity

        # Sized so restrict mode always finds unreferenced parents:
        # ~200·e^(-1.2) ≈ 60 free parents for 2 epochs of 10 victims.
        result = run_referential_integrity(
            n_parents=200, n_children=240, epochs=2, seed=1
        )
        assert result.data["restrict"]["violations"] == 0
        assert result.data["cascade"]["violations"] == 0
        assert result.data["cascade"]["children_cascaded"] > 0

    def test_cross_table(self):
        from repro.core.config import (
            default_cross_query,
            set_default_cross_query,
        )
        from repro.experiments import run_cross_table

        result = run_cross_table(
            budget=80, batches=3, batch_size=60, seed=1
        )
        assert result.data["spec"] == default_cross_query()
        series = result.data["precision_series"]
        assert len(series) == 3
        assert all(0.0 <= p <= 1.0 for p in series)
        # Two forgetting streams meeting in a join: precision decays.
        assert series[-1] < series[0]
        assert "plan tree:" in result.render()

        # The experiment follows the process default the CLI sets.
        previous = default_cross_query()
        try:
            set_default_cross_query("union:s1,s2:low=0,high=50")
            unioned = run_cross_table(
                budget=80, batches=2, batch_size=60, seed=1
            )
            assert unioned.data["spec"] == "union:s1,s2:low=0,high=50"
            assert all(
                len(point["inputs"]) == 2 for point in unioned.data["series"]
            )
        finally:
            set_default_cross_query(previous)

    def test_histogram_summaries(self):
        from repro.experiments import run_histogram_summaries

        result = run_histogram_summaries(
            n_rows=2000, bins_sweep=(8, 64), seed=1
        )
        by_bins = result.data["by_bins"]
        assert by_bins[64]["mean_relative_error"] <= by_bins[8][
            "mean_relative_error"
        ]


class TestRender:
    def test_render_concatenates_sections(self):
        result = run_figure1(dbsize=100, epochs=2, seed=1)
        text = result.render()
        assert text.count("==") >= 1
        assert "Active percentage" in text
