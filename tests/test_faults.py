"""Tests for the deterministic fault-injection framework (repro.faults)."""

from __future__ import annotations

import threading

import pytest

from repro import faults
from repro._util.errors import ConfigError, TransientFault
from repro.faults import (
    CrashPoint,
    DelayPoint,
    FaultInjected,
    FaultPlan,
    FlakyPoint,
    parse_fault_plan,
)


class TestSpecGrammar:
    def test_crash_defaults_to_first_hit(self):
        plan = parse_fault_plan("checkpoint.tmp:crash")
        point = plan.points["checkpoint.tmp"]
        assert isinstance(point, CrashPoint) and point.at == 1

    def test_crash_at_ordinal(self):
        plan = parse_fault_plan("ingest.apply:crash@7")
        assert plan.points["ingest.apply"].at == 7

    def test_delay_and_flaky_and_seed(self):
        plan = parse_fault_plan(
            "serve.handle:delay=0.25;serve.query:flaky=0.5;seed=42"
        )
        assert isinstance(plan.points["serve.handle"], DelayPoint)
        assert plan.points["serve.handle"].seconds == 0.25
        assert isinstance(plan.points["serve.query"], FlakyPoint)
        assert plan.seed == 42

    def test_spec_round_trips(self):
        spec = "checkpoint.tmp:crash@2;serve.query:flaky=0.5;seed=7"
        assert parse_fault_plan(spec).spec() == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ;  ",
            "nosuchpoint:crash",
            "checkpoint.tmp",
            "checkpoint.tmp:explode",
            "checkpoint.tmp:crash@zero",
            "checkpoint.tmp:crash@0",
            "checkpoint.tmp:delay=abc",
            "checkpoint.tmp:delay=0",
            "checkpoint.tmp:flaky=2.0",
            "checkpoint.tmp:flaky=0",
            "seed=notanint",
        ],
    )
    def test_malformed_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_plan(bad)

    def test_unknown_point_error_lists_the_registry(self):
        with pytest.raises(ConfigError, match="checkpoint.tmp"):
            parse_fault_plan("nosuchpoint:crash")

    def test_duplicate_point_rejected(self):
        with pytest.raises(ConfigError, match="twice"):
            parse_fault_plan("serve.query:crash;serve.query:delay=1")


class TestRegistry:
    def test_every_layer_has_registered_points(self):
        points = faults.registered_points()
        assert {
            "checkpoint.tmp",
            "checkpoint.rotate",
            "checkpoint.done",
            "ingest.enqueue",
            "ingest.apply",
            "ingest.applied",
            "rebalance.adapt",
            "serve.handle",
            "serve.query",
        } <= set(points)
        assert all(points.values()), "every point documents its contract"


class TestPlanBehaviour:
    def test_disarmed_points_are_noops(self):
        assert faults.active_plan() is None
        for name in faults.registered_points():
            faults.fault_point(name)  # must not raise

    def test_crash_fires_exactly_on_its_ordinal(self):
        with faults.armed("serve.query:crash@3") as plan:
            faults.fault_point("serve.query")
            faults.fault_point("serve.query")
            with pytest.raises(FaultInjected) as excinfo:
                faults.fault_point("serve.query")
            assert excinfo.value.point == "serve.query"
            assert excinfo.value.hit == 3
            # One-shot: the same process can recover and continue.
            faults.fault_point("serve.query")
            assert plan.hits("serve.query") == 4

    def test_fault_injected_is_not_an_exception(self):
        """``except Exception`` recovery code must not swallow a kill."""
        assert not issubclass(FaultInjected, Exception)
        with faults.armed("serve.query:crash"):
            with pytest.raises(FaultInjected):
                try:
                    faults.fault_point("serve.query")
                except Exception:  # noqa: BLE001 - the point of the test
                    pytest.fail("crash fault swallowed by except Exception")

    def test_flaky_raises_transient_fault_deterministically(self):
        def draws(spec):
            outcomes = []
            with faults.armed(spec):
                for _ in range(50):
                    try:
                        faults.fault_point("serve.query")
                        outcomes.append(False)
                    except TransientFault:
                        outcomes.append(True)
            return outcomes

        first = draws("serve.query:flaky=0.4;seed=11")
        second = draws("serve.query:flaky=0.4;seed=11")
        other_seed = draws("serve.query:flaky=0.4;seed=12")
        assert first == second, "same seed, same failure schedule"
        assert any(first) and not all(first)
        assert first != other_seed

    def test_delay_uses_injected_sleep(self):
        slept = []
        plan = parse_fault_plan(
            "serve.handle:delay=0.5", sleep=slept.append
        )
        with faults.armed(plan):
            faults.fault_point("serve.handle")
            faults.fault_point("serve.handle")
        assert slept == [0.5, 0.5]

    def test_armed_restores_previous_plan_even_on_crash(self):
        outer = parse_fault_plan("serve.handle:delay=9", sleep=lambda s: None)
        with faults.armed(outer):
            with pytest.raises(FaultInjected):
                with faults.armed("serve.query:crash"):
                    faults.fault_point("serve.query")
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_arm_with_bad_spec_leaves_previous_plan(self):
        with faults.armed("serve.query:crash@5") as plan:
            with pytest.raises(ConfigError):
                faults.arm("nosuchpoint:crash")
            assert faults.active_plan() is plan

    def test_hit_counting_is_exact_under_threads(self):
        """Concurrent arrivals get distinct ordinals: exactly one thread
        observes the crash ordinal, no matter the interleaving."""
        crashes = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(25):
                try:
                    faults.fault_point("serve.handle")
                except FaultInjected:
                    crashes.append(1)

        with faults.armed("serve.handle:crash@100") as plan:
            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert plan.hits("serve.handle") == 200
        assert len(crashes) == 1

    def test_active_spec_reflects_armed_plan(self):
        assert faults.active_spec() == ""
        with faults.armed("checkpoint.done:crash@2"):
            assert faults.active_spec() == "checkpoint.done:crash@2"
        assert faults.active_spec() == ""


class TestConfigIntegration:
    def test_set_default_faults_arms_and_restores(self):
        from repro.core.config import default_faults, set_default_faults

        assert default_faults() == ""
        try:
            set_default_faults("serve.query:crash@9")
            assert faults.active_spec() == "serve.query:crash@9"
            assert default_faults() == "serve.query:crash@9"
        finally:
            set_default_faults("")
        assert faults.active_plan() is None

    def test_set_default_faults_rejects_bad_spec_without_arming(self):
        from repro.core.config import default_faults, set_default_faults

        with pytest.raises(ConfigError):
            set_default_faults("nosuchpoint:crash")
        assert default_faults() == ""
        assert faults.active_plan() is None

    def test_fault_plan_requires_point_instances_unique(self):
        with pytest.raises(ConfigError, match="twice"):
            FaultPlan([CrashPoint("serve.query"), CrashPoint("serve.query")])
