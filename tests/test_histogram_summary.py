"""Tests for the histogram micro-model summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, LifecycleError
from repro.summaries import HistogramSummaryStore


class TestBasics:
    def test_exact_on_aligned_ranges(self):
        store = HistogramSummaryStore(0, 99, bins=10)
        store.add(1, np.arange(100))
        assert store.approx_range_count(0, 50) == pytest.approx(50.0)
        assert store.approx_range_count(20, 30) == pytest.approx(10.0)

    def test_fractional_overlap(self):
        store = HistogramSummaryStore(0, 99, bins=10)
        store.add(1, np.arange(100))
        # Half of the first bin: ~5 of its 10 tuples.
        assert store.approx_range_count(0, 5) == pytest.approx(5.0)

    def test_accumulates_events(self):
        store = HistogramSummaryStore(0, 99, bins=10)
        store.add(1, np.arange(0, 50))
        store.add(2, np.arange(50, 100))
        assert store.event_count == 2
        assert store.tuple_count == 100
        assert store.approx_range_count(0, 100) == pytest.approx(100.0)

    def test_empty_range(self):
        store = HistogramSummaryStore(0, 99)
        store.add(1, np.arange(10))
        assert store.approx_range_count(50, 50) == 0.0
        assert store.approx_range_count(60, 50) == 0.0

    def test_estimation_error_bounded_by_bin_width(self, rng):
        store = HistogramSummaryStore(0, 999, bins=50)
        values = rng.integers(0, 1000, 5000)
        store.add(1, values)
        for low in (0, 137, 488):
            high = low + 200
            truth = int(((values >= low) & (values < high)).sum())
            estimate = store.approx_range_count(low, high)
            # Two edge bins of ~20 values each hold ~100 tuples apiece.
            assert abs(estimate - truth) < 250

    def test_repaired_count(self):
        store = HistogramSummaryStore(0, 99, bins=10)
        store.add(1, np.arange(50))
        assert store.repaired_range_count(7, 0, 50) == pytest.approx(57.0)
        with pytest.raises(ConfigError):
            store.repaired_range_count(-1, 0, 50)

    def test_footprint_independent_of_tuples(self):
        store = HistogramSummaryStore(0, 999, bins=32)
        store.add(1, np.arange(1000))
        assert store.nbytes == (32 + 2) * 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            HistogramSummaryStore(10, 5)
        with pytest.raises(ConfigError):
            HistogramSummaryStore(0, 10, bins=0)
        store = HistogramSummaryStore(0, 10)
        with pytest.raises(LifecycleError):
            store.add(1, np.empty(0, dtype=np.int64))


class TestIntegrationWithForgetting:
    def test_quantified_information_loss(self, rng):
        """The use case: estimate MF for a range query after amnesia."""
        from repro.storage import Table

        table = Table("t", ["a"])
        values = rng.integers(0, 1000, 2000)
        table.insert_batch(0, {"a": values})
        store = HistogramSummaryStore(0, 999, bins=40)

        victims = rng.choice(2000, 1000, replace=False)
        store.add(1, table.values("a")[victims])
        table.forget(victims, epoch=1)

        low, high = 200, 400
        active_values = table.active_values("a")
        rf = int(((active_values >= low) & (active_values < high)).sum())
        true_mf = int(
            ((values >= low) & (values < high)).sum()
        ) - rf
        estimated_mf = store.approx_range_count(low, high)
        assert abs(estimated_mf - true_mf) < 0.25 * max(true_mf, 1)
