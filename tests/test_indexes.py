"""Tests for repro.indexes: sorted, hash, BRIN."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, IndexError_
from repro.indexes import BlockRangeIndex, HashIndex, SortedIndex
from repro.storage import Table


@pytest.fixture
def indexed_table(rng):
    table = Table("t", ["a"])
    table.insert_batch(0, {"a": rng.integers(0, 1000, 5000)})
    return table


def brute_force(table, low, high):
    values = table.values("a")
    mask = (values >= low) & (values < high) & table.active_mask()
    return set(np.flatnonzero(mask).tolist())


@pytest.mark.parametrize(
    "index_factory",
    [
        SortedIndex,
        HashIndex,
        lambda t, c: BlockRangeIndex(t, c, block_size=64),
    ],
    ids=["sorted", "hash", "brin"],
)
class TestIndexContract:
    """Every index type must agree with the brute-force scan."""

    def test_matches_scan_fresh(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        probe = index.lookup_range(100, 150)
        assert set(probe.positions.tolist()) == brute_force(indexed_table, 100, 150)

    def test_skips_forgotten(self, indexed_table, index_factory, rng):
        index = index_factory(indexed_table, "a")
        victims = rng.choice(5000, 2500, replace=False)
        indexed_table.forget(victims, epoch=1)
        probe = index.lookup_range(0, 500)
        assert set(probe.positions.tolist()) == brute_force(indexed_table, 0, 500)

    def test_sees_inserts(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        indexed_table.insert_batch(1, {"a": np.array([50, 51, 52])})
        probe = index.lookup_range(50, 53)
        assert set(probe.positions.tolist()) == brute_force(indexed_table, 50, 53)
        assert {5000, 5001, 5002} <= set(probe.positions.tolist())

    def test_mixed_insert_forget_stream(self, indexed_table, index_factory, rng):
        index = index_factory(indexed_table, "a")
        for epoch in range(1, 6):
            indexed_table.insert_batch(
                epoch, {"a": rng.integers(0, 1000, 500)}
            )
            active = indexed_table.active_positions()
            victims = rng.choice(active, 500, replace=False)
            indexed_table.forget(victims, epoch=epoch)
        for low in (0, 250, 990):
            probe = index.lookup_range(low, low + 20)
            assert set(probe.positions.tolist()) == brute_force(
                indexed_table, low, low + 20
            )

    def test_lookup_value(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        probe = index.lookup_value(123)
        assert set(probe.positions.tolist()) == brute_force(indexed_table, 123, 124)

    def test_drop_and_rebuild(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        index.drop()
        assert index.is_dropped
        assert index.nbytes() == 0
        with pytest.raises(IndexError_):
            index.lookup_range(0, 10)
        # Mutations while dropped are absorbed at rebuild time.
        indexed_table.insert_batch(1, {"a": np.array([7])})
        indexed_table.forget(np.array([0]), epoch=1)
        index.rebuild()
        probe = index.lookup_range(0, 1000)
        assert set(probe.positions.tolist()) == brute_force(indexed_table, 0, 1000)

    def test_empty_range(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        probe = index.lookup_range(2000, 3000)
        assert probe.count == 0

    def test_maintenance_counter(self, indexed_table, index_factory):
        index = index_factory(indexed_table, "a")
        before = index.maintenance_ops
        indexed_table.insert_batch(1, {"a": np.array([1, 2])})
        indexed_table.forget(np.array([10]), epoch=1)
        assert index.maintenance_ops == before + 3


class TestSortedIndexSpecifics:
    def test_delta_merges(self, rng):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": rng.integers(0, 100, 10)})
        index = SortedIndex(table, "a", merge_threshold=16)
        for epoch in range(1, 6):
            table.insert_batch(epoch, {"a": rng.integers(0, 100, 10)})
        # 50 delta rows exceed the threshold: a merge must have fired.
        assert index.delta_size < 50
        probe = index.lookup_range(0, 100)
        assert probe.count == table.active_count

    def test_forgotten_purged_at_merge(self, rng):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(10)})
        index = SortedIndex(table, "a", merge_threshold=4)
        table.forget(np.array([0, 1]), epoch=1)
        table.insert_batch(1, {"a": np.arange(10, 20)})  # triggers merge
        probe = index.lookup_range(0, 30)
        assert probe.count == 18

    def test_probe_cost_proportional_to_range(self, indexed_table):
        index = SortedIndex(indexed_table, "a")
        narrow = index.lookup_range(0, 10)
        wide = index.lookup_range(0, 500)
        assert narrow.entries_touched < wide.entries_touched


class TestHashIndexSpecifics:
    def test_entry_bookkeeping(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [7, 7, 3]})
        index = HashIndex(table, "a")
        assert index.entry_count == 3
        assert index.distinct_values == 2
        table.forget(np.array([0]), epoch=1)
        assert index.entry_count == 2
        table.forget(np.array([2]), epoch=1)
        assert index.distinct_values == 1

    def test_range_degrades_to_point_probes(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [5, 6, 7]})
        index = HashIndex(table, "a")
        probe = index.lookup_range(5, 8)
        assert sorted(probe.positions.tolist()) == [0, 1, 2]
        # One probe per candidate value.
        assert probe.entries_touched >= 3


class TestBrinSpecifics:
    def test_block_pruning_on_clustered_data(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(10_000)})
        index = BlockRangeIndex(table, "a", block_size=100)
        probe = index.lookup_range(5000, 5050)
        assert probe.entries_touched <= 200
        assert index.pruned_fraction(5000, 5050) > 0.97

    def test_fully_forgotten_blocks_skipped(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(1000)})
        index = BlockRangeIndex(table, "a", block_size=100)
        table.forget(np.arange(0, 100), epoch=1)  # block 0 entirely
        assert 0 not in index.candidate_blocks(0, 100).tolist()
        assert index.lookup_range(0, 100).count == 0

    def test_bounds_loose_after_forget_tight_after_rebuild(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        index = BlockRangeIndex(table, "a", block_size=50)
        table.forget(np.arange(0, 25), epoch=1)  # first half of block 0
        # Loose bounds still make block 0 a candidate for [0, 25).
        assert 0 in index.candidate_blocks(0, 25).tolist()
        index.rebuild()
        assert 0 not in index.candidate_blocks(0, 25).tolist()

    def test_block_size_validated(self, indexed_table):
        with pytest.raises(ConfigError):
            BlockRangeIndex(indexed_table, "a", block_size=0)

    def test_block_count(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(250)})
        index = BlockRangeIndex(table, "a", block_size=100)
        assert index.block_count == 3


class TestObserverSafety:
    def test_unknown_column_rejected(self, indexed_table):
        from repro._util.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            SortedIndex(indexed_table, "missing")

    def test_nbytes_positive_when_built(self, indexed_table):
        for factory in (SortedIndex, HashIndex, BlockRangeIndex):
            index = factory(indexed_table, "a")
            assert index.nbytes() > 0
            indexed_table.remove_observer(index)


class TestForgettingStopsIndexHits:
    """Forgotten rows must never surface through index lookups (§1:
    "stop indexing the forgotten data")."""

    def _serial_table(self, n=200):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(n)})
        return table

    def test_hash_point_lookup_drops_forgotten(self):
        table = self._serial_table()
        index = HashIndex(table, "a")
        assert index.lookup_value(42).positions.tolist() == [42]
        table.forget(np.array([42]), epoch=1)
        assert index.lookup_value(42).positions.size == 0
        assert index.lookup_range(40, 45).positions.tolist() == [40, 41, 43, 44]

    def test_hash_entry_count_shrinks_and_bucket_gc(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [7, 7, 3]})
        index = HashIndex(table, "a")
        assert index.entry_count == 3 and index.distinct_values == 2
        table.forget(np.array([0, 1]), epoch=1)
        assert index.entry_count == 1
        assert index.distinct_values == 1  # the 7-bucket was emptied and freed
        assert index.lookup_value(7).positions.size == 0

    def test_sorted_run_tombstones_forgotten(self):
        table = self._serial_table()
        index = SortedIndex(table, "a")
        table.forget(np.arange(0, 200, 2), epoch=1)
        hits = index.lookup_range(0, 50).positions
        assert hits.tolist() == list(range(1, 50, 2))

    def test_sorted_delta_buffer_respects_forgetting(self):
        table = self._serial_table(n=10)
        index = SortedIndex(table, "a", merge_threshold=1000)  # never merge
        table.insert_batch(1, {"a": np.arange(100, 110)})  # lands in delta
        table.forget(np.array([12, 14]), epoch=2)  # forget delta rows
        assert index.delta_size > 0  # still buffered, not merged
        hits = index.lookup_range(100, 110).positions
        assert sorted(hits.tolist()) == [10, 11, 13, 15, 16, 17, 18, 19]

    def test_sorted_merge_purges_tombstones(self):
        table = self._serial_table(n=10)
        index = SortedIndex(table, "a", merge_threshold=4)
        table.forget(np.array([2, 3]), epoch=1)
        table.insert_batch(1, {"a": np.arange(100, 108)})  # exceeds threshold
        assert index.delta_size == 0  # merged
        assert index.lookup_range(0, 10).positions.tolist() == [0, 1] + list(
            range(4, 10)
        )
        assert index.lookup_range(100, 108).count == 8

    def test_brin_skips_fully_forgotten_blocks(self):
        table = self._serial_table(n=256)
        index = BlockRangeIndex(table, "a", block_size=64)
        table.forget(np.arange(64), epoch=1)  # block 0 fully forgotten
        assert index.candidate_blocks(0, 64).size == 0
        probe = index.lookup_range(0, 64)
        assert probe.positions.size == 0
        assert probe.entries_touched == 0  # skipping costs nothing

    def test_forget_then_reinsert_same_values(self):
        """New rows holding previously forgotten values are indexed."""
        table = self._serial_table(n=5)
        indexes = (
            SortedIndex(table, "a", merge_threshold=2),
            HashIndex(table, "a"),
            BlockRangeIndex(table, "a", block_size=4),
        )
        table.forget(np.array([3]), epoch=1)
        table.insert_batch(1, {"a": [3]})  # position 5, value 3
        for index in indexes:
            assert index.lookup_value(3).positions.tolist() == [5]


class TestEstimateEntries:
    def _table(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(0, 200)})
        table.forget(np.arange(0, 50), epoch=1)
        return table

    def test_sorted_estimate_matches_probe(self):
        table = self._table()
        index = SortedIndex(table, "a")
        probe = index.lookup_range(60, 90)
        assert index.estimate_entries(60, 90) == probe.entries_touched

    def test_brin_estimate_matches_probe(self):
        table = self._table()
        index = BlockRangeIndex(table, "a", block_size=32)
        probe = index.lookup_range(60, 90)
        assert index.estimate_entries(60, 90) == probe.entries_touched

    def test_hash_estimate_matches_probe_narrow_and_wide(self):
        table = self._table()
        index = HashIndex(table, "a")
        for low, high in ((60, 70), (-500, 1000)):
            probe = index.lookup_range(low, high)
            assert index.estimate_entries(low, high) == probe.entries_touched

    def test_hash_wide_estimate_is_cheap(self):
        table = self._table()
        index = HashIndex(table, "a")
        # A probe across a huge domain must not iterate per value.
        import time
        start = time.perf_counter()
        estimate = index.estimate_entries(0, 10**12)
        assert time.perf_counter() - start < 0.1
        assert estimate == 150 + 10**12  # live entries + one probe per value

    def test_dropped_index_estimates_none(self):
        table = self._table()
        for index in (
            SortedIndex(table, "a"),
            HashIndex(table, "a"),
            BlockRangeIndex(table, "a", block_size=32),
        ):
            index.drop()
            assert index.estimate_entries(0, 10) is None
