"""Integration tests: the full stack working together.

These exercise multi-module paths end to end — simulator + policies +
dispositions + indexes + metrics — asserting the global invariants the
paper's methodology depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AmnesiaDatabase, AmnesiaSimulator, SimulationConfig
from repro.amnesia import (
    CompositeAmnesia,
    FifoAmnesia,
    POLICY_NAMES,
    PrivacyRetentionWrapper,
    RotAmnesia,
    UniformAmnesia,
    make_policy,
)
from repro.coldstore import ColdStore
from repro.datagen import ZipfianDistribution, make_distribution
from repro.indexes import BlockRangeIndex, SortedIndex
from repro.lifecycle import (
    ColdStorageDisposition,
    DispositionExecutor,
    StopIndexingDisposition,
    SummaryDisposition,
)
from repro.query import QueryExecutor, RangePredicate, RangeQuery


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_every_policy_survives_a_full_run(policy_name):
    """All registered policies run the paper loop and hold the budget."""
    kwargs = (
        {"column": "a"} if policy_name in ("pair", "dist", "stratified") else {}
    )
    config = SimulationConfig(dbsize=150, epochs=4, queries_per_epoch=25)
    simulator = AmnesiaSimulator(
        config, make_distribution("zipfian"), make_policy(policy_name, **kwargs)
    )
    report = simulator.run()
    assert all(r.active_rows == 150 for r in report.epochs)
    assert all(
        0.0 <= r.precision.error_margin <= 1.0
        for r in report.epochs
        if r.precision is not None
    )


def test_indexes_stay_consistent_through_simulation():
    """Indexes subscribed to a simulated table always agree with scans."""
    config = SimulationConfig(dbsize=300, epochs=5, queries_per_epoch=10)
    simulator = AmnesiaSimulator(
        config, make_distribution("uniform"), UniformAmnesia()
    )
    simulator.load_initial()
    sorted_index = SortedIndex(simulator.table, "a")
    brin = BlockRangeIndex(simulator.table, "a", block_size=64)
    while simulator.current_epoch < config.epochs:
        simulator.step()
        values = simulator.table.values("a")
        mask = (
            (values >= 100) & (values < 300) & simulator.table.active_mask()
        )
        expected = set(np.flatnonzero(mask).tolist())
        assert set(sorted_index.lookup_range(100, 300).positions.tolist()) == expected
        assert set(brin.lookup_range(100, 300).positions.tolist()) == expected


def test_cold_storage_holds_every_forgotten_tuple():
    """After a run with the cold disposition, active ∪ archived == all."""
    disposition = ColdStorageDisposition(ColdStore())
    config = SimulationConfig(dbsize=200, epochs=4, queries_per_epoch=0)
    simulator = AmnesiaSimulator(
        config, make_distribution("normal"), FifoAmnesia(),
        disposition=disposition,
    )
    simulator.run()
    table = simulator.table
    assert disposition.store.tuple_count == table.forgotten_count
    forgotten = table.forgotten_positions()
    assert disposition.store.contains(forgotten).all()
    # Recovered values match the oracle exactly.
    sample = forgotten[:25]
    recovered = disposition.recover(sample)
    assert np.array_equal(recovered["a"], table.values("a")[sample])


def test_summaries_reconstruct_whole_table_aggregates():
    disposition = SummaryDisposition()
    config = SimulationConfig(dbsize=200, epochs=5, queries_per_epoch=0)
    simulator = AmnesiaSimulator(
        config, make_distribution("zipfian"), UniformAmnesia(),
        disposition=disposition,
    )
    simulator.run()
    executor = DispositionExecutor(simulator.table, disposition)
    for fn in ("avg", "sum", "count", "min", "max"):
        answer, oracle = executor.aggregate_with_summaries(fn, "a")
        assert answer == pytest.approx(oracle), fn


def test_stop_indexing_plan_asymmetry_end_to_end():
    disposition = StopIndexingDisposition()
    config = SimulationConfig(dbsize=200, epochs=4, queries_per_epoch=0)
    simulator = AmnesiaSimulator(
        config, make_distribution("uniform"), UniformAmnesia(),
        disposition=disposition,
    )
    simulator.run()
    index = SortedIndex(simulator.table, "a")
    executor = DispositionExecutor(simulator.table, disposition, index=index)
    scan = executor.range_scan("a", 0, 10_001)
    via_index = executor.range_via_index("a", 0, 10_001)
    assert scan.recall == 1.0
    assert via_index.returned == simulator.table.active_count
    assert via_index.recall == pytest.approx(
        simulator.table.active_count / simulator.table.total_rows
    )


def test_layered_policy_stack():
    """Privacy wrapper over a rot/uniform mixture, with summaries."""
    policy = PrivacyRetentionWrapper(
        CompositeAmnesia([(0.7, RotAmnesia()), (0.3, UniformAmnesia())]),
        max_age_epochs=3,
    )
    disposition = SummaryDisposition()
    db = AmnesiaDatabase(
        budget=300, policy=policy, disposition=disposition
    )
    rng = np.random.default_rng(17)
    for _ in range(6):
        db.insert({"a": rng.integers(0, 5000, 150)})
        db.range_query("a", 100, 400)
        active = db.table.active_positions()
        ages = db.epoch - db.table.insert_epochs()[active]
        assert ages.max() < 3
        assert db.active_count <= 300
    assert disposition.store.tuple_count == db.table.forgotten_count


def test_rot_precision_advantage_is_causal():
    """Removing the access signal removes rot's zipfian advantage."""
    config = SimulationConfig(dbsize=300, epochs=6, queries_per_epoch=150)

    def final_precision(frequency_exponent):
        simulator = AmnesiaSimulator(
            config,
            ZipfianDistribution(),
            RotAmnesia(frequency_exponent=frequency_exponent),
        )
        return simulator.run().precision_series()[-1]

    with_shield = final_precision(2.0)
    without_shield = final_precision(0.0)
    assert with_shield > without_shield + 0.05


def test_executor_oracle_equals_union_of_views():
    """RF + MF tuples = all matching tuples, on a live simulated table."""
    config = SimulationConfig(dbsize=250, epochs=4, queries_per_epoch=5)
    simulator = AmnesiaSimulator(
        config, make_distribution("normal"), UniformAmnesia()
    )
    simulator.run()
    executor = QueryExecutor(simulator.table, record_access=False)
    values = simulator.table.values("a")
    for low in (0, 2500, 7000):
        query = RangeQuery(RangePredicate("a", low, low + 800))
        result = executor.execute_range(query, epoch=99)
        oracle = np.flatnonzero((values >= low) & (values < low + 800))
        combined = np.sort(
            np.concatenate([result.active_positions, result.missed_positions])
        )
        assert np.array_equal(combined, oracle)
