"""Tests for repro.integrity: foreign keys under amnesia."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, LifecycleError
from repro.amnesia import FifoAmnesia, UniformAmnesia
from repro.integrity import ForeignKey, ReferentialAmnesiaWrapper
from repro.storage import Table


@pytest.fixture
def parent_child():
    parent = Table("orders", ["id"])
    child = Table("items", ["order_id"])
    parent.insert_batch(0, {"id": np.arange(10)})
    # Order i has i items (order 0 is unreferenced).
    refs = np.concatenate([np.full(i, i) for i in range(10)])
    child.insert_batch(0, {"order_id": refs})
    return parent, child


class TestForeignKey:
    def test_consistent_when_fresh(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        assert fk.violations().size == 0
        fk.check()

    def test_detects_dangling_children(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        parent.forget(np.array([5]), epoch=1)  # order 5 had 5 items
        assert fk.violations().size == 5
        with pytest.raises(LifecycleError):
            fk.check()

    def test_forgetting_both_sides_is_consistent(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        parent.forget(np.array([5]), epoch=1)
        child.forget(fk.violations(), epoch=1)
        fk.check()

    def test_referenced_parent_positions(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        referenced = fk.referenced_parent_positions()
        # Order 0 has no items, so 9 of 10 parents are referenced.
        assert sorted(referenced.tolist()) == list(range(1, 10))

    def test_children_of(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        children = fk.children_of(np.array([3]))
        assert children.size == 3
        assert (child.values("order_id")[children] == 3).all()

    def test_self_reference_rejected(self, parent_child):
        parent, _ = parent_child
        with pytest.raises(ConfigError):
            ForeignKey(parent, "id", parent, "id")

    def test_column_validated(self, parent_child):
        parent, child = parent_child
        from repro._util.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            ForeignKey(child, "nope", parent, "id")


class TestRestrictMode:
    def test_referenced_parents_never_forgotten(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(
            UniformAmnesia(), fk, mode="restrict"
        )
        victims = policy.select_victims(parent, 1, 1, rng)
        # Only order 0 is unreferenced, so it is the only legal victim.
        assert victims.tolist() == [0]
        fk.check()

    def test_restrict_cannot_overdraw(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(
            UniformAmnesia(), fk, mode="restrict"
        )
        from repro._util.errors import InsufficientVictimsError

        with pytest.raises(InsufficientVictimsError):
            policy.select_victims(parent, 5, 1, rng)

    def test_restrict_relaxes_as_children_forgotten(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        child.forget(fk.children_of(np.array([7])), epoch=1)
        policy = ReferentialAmnesiaWrapper(
            FifoAmnesia(), fk, mode="restrict"
        )
        victims = policy.select_victims(parent, 2, 1, rng)
        assert sorted(victims.tolist()) == [0, 7]


class TestCascadeMode:
    def test_children_forgotten_with_parent(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(
            FifoAmnesia(), fk, mode="cascade"
        )
        victims = policy.select_victims(parent, 4, 1, rng)  # orders 0..3
        parent.forget(victims, epoch=1)
        fk.check()
        # Items of orders 1..3: 1 + 2 + 3 = 6 cascaded.
        assert policy.cascaded_children == 6
        assert child.forgotten_count == 6

    def test_cascade_keeps_fk_consistent_over_run(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(
            UniformAmnesia(), fk, mode="cascade"
        )
        for epoch in range(1, 4):
            victims = policy.select_victims(parent, 2, epoch, rng)
            parent.forget(victims, epoch)
            fk.check()

    def test_reset(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(FifoAmnesia(), fk, mode="cascade")
        victims = policy.select_victims(parent, 4, 1, rng)
        parent.forget(victims, epoch=1)
        policy.reset()
        assert policy.cascaded_children == 0


class TestWrapperConfig:
    def test_mode_validated(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        with pytest.raises(ConfigError):
            ReferentialAmnesiaWrapper(FifoAmnesia(), fk, mode="ignore")

    def test_wrong_table_rejected(self, parent_child, rng):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(FifoAmnesia(), fk)
        with pytest.raises(ConfigError):
            policy.select_victims(child, 1, 1, rng)

    def test_name(self, parent_child):
        parent, child = parent_child
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(FifoAmnesia(), fk, mode="cascade")
        assert policy.name == "referential[cascade](fifo)"
