"""Tests for repro.lifecycle: dispositions + disposition executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import LifecycleError
from repro.indexes import SortedIndex
from repro.lifecycle import (
    ColdStorageDisposition,
    DispositionExecutor,
    HardDeleteDisposition,
    MarkOnlyDisposition,
    StopIndexingDisposition,
    SummaryDisposition,
)
from repro.storage import Table


@pytest.fixture
def half_forgotten():
    """1000-row serial table, first half forgotten; disposition attached."""

    def _make(disposition):
        table = Table("t", ["a"])
        table.add_observer(disposition)
        table.insert_batch(0, {"a": np.arange(1000)})
        table.forget(np.arange(500), epoch=1)
        return table

    return _make


class TestMarkOnly:
    def test_invisible_everywhere(self, half_forgotten):
        disposition = MarkOnlyDisposition()
        table = half_forgotten(disposition)
        assert disposition.scan_mask(table).sum() == 500
        assert disposition.index_mask(table).sum() == 500
        assert not disposition.recoverable
        assert disposition.stats()["disposition"] == "mark"


class TestHardDelete:
    def test_accounting(self, half_forgotten):
        disposition = HardDeleteDisposition()
        half_forgotten(disposition)
        stats = disposition.stats()
        assert stats["tuples_deleted"] == 500
        assert stats["bytes_reclaimed"] == 500 * 8
        assert not disposition.recoverable


class TestStopIndexing:
    def test_scan_sees_all_index_sees_active(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        assert disposition.scan_mask(table).sum() == 1000
        assert disposition.index_mask(table).sum() == 500
        assert disposition.recoverable


class TestColdStorageDisposition:
    def test_archives_on_forget(self, half_forgotten):
        disposition = ColdStorageDisposition()
        half_forgotten(disposition)
        assert disposition.store.tuple_count == 500
        recovered = disposition.recover(np.array([0, 499]))
        assert recovered["a"].tolist() == [0, 499]
        stats = disposition.stats()
        assert stats["archived_tuples"] == 500
        assert stats["retrieval_cost_usd"] > 0.0


class TestSummaryDisposition:
    def test_summarises_on_forget(self, half_forgotten):
        disposition = SummaryDisposition()
        half_forgotten(disposition)
        assert disposition.store.tuple_count == 500
        summary = disposition.store.combined("a")
        assert summary.min == 0 and summary.max == 499
        assert disposition.stats()["summary_bytes"] == 40

    def test_empty_forget_rejected(self, small_table):
        disposition = SummaryDisposition()
        with pytest.raises(LifecycleError):
            disposition.on_forget(small_table, np.empty(0, dtype=np.int64))


class TestDispositionExecutor:
    def test_scan_recall_under_stop_indexing(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        executor = DispositionExecutor(table, disposition)
        outcome = executor.range_scan("a", 0, 1000)
        assert outcome.recall == 1.0
        assert outcome.returned == 1000
        assert outcome.tuples_touched == 1000
        assert outcome.plan == "scan"

    def test_scan_recall_under_mark_only(self, half_forgotten):
        disposition = MarkOnlyDisposition()
        table = half_forgotten(disposition)
        outcome = DispositionExecutor(table, disposition).range_scan("a", 0, 1000)
        assert outcome.recall == 0.5

    def test_index_plan_skips_forgotten_cheaply(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        index = SortedIndex(table, "a")
        executor = DispositionExecutor(table, disposition, index=index)
        outcome = executor.range_via_index("a", 400, 600)
        assert outcome.returned == 100  # 500..599 survive
        assert outcome.oracle_matches == 200
        assert outcome.recall == 0.5
        assert outcome.tuples_touched < 1000

    def test_index_plan_requires_index(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        executor = DispositionExecutor(table, disposition)
        with pytest.raises(LifecycleError):
            executor.range_via_index("a", 0, 10)

    def test_index_column_checked(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        index = SortedIndex(table, "a")
        executor = DispositionExecutor(table, disposition, index=index)
        with pytest.raises(LifecycleError):
            executor.range_via_index("b", 0, 10)

    def test_foreign_index_rejected(self, half_forgotten):
        disposition = StopIndexingDisposition()
        table = half_forgotten(disposition)
        other = Table("other", ["a"])
        other.insert_batch(0, {"a": [1]})
        foreign = SortedIndex(other, "a")
        with pytest.raises(LifecycleError):
            DispositionExecutor(table, disposition, index=foreign)

    def test_empty_match_recall_is_one(self, half_forgotten):
        disposition = MarkOnlyDisposition()
        table = half_forgotten(disposition)
        outcome = DispositionExecutor(table, disposition).range_scan(
            "a", 5000, 6000
        )
        assert outcome.recall == 1.0

    def test_summary_aggregates_exact(self, half_forgotten):
        disposition = SummaryDisposition()
        table = half_forgotten(disposition)
        executor = DispositionExecutor(table, disposition)
        answer, oracle = executor.aggregate_with_summaries("avg", "a")
        assert answer == pytest.approx(oracle)
        assert oracle == pytest.approx(499.5)

    def test_summary_aggregates_need_summary_disposition(self, half_forgotten):
        disposition = MarkOnlyDisposition()
        table = half_forgotten(disposition)
        executor = DispositionExecutor(table, disposition)
        with pytest.raises(LifecycleError):
            executor.aggregate_with_summaries("avg", "a")
