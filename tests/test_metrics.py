"""Tests for repro.metrics: precision collection, maps, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.metrics import (
    AmnesiaMap,
    BatchPrecisionCollector,
    BatchPrecisionSummary,
    EpochReport,
    RunReport,
)
from repro.query import (
    AggregateFunction,
    AggregateQuery,
    AggregateResult,
    RangePredicate,
    RangeQuery,
    RangeResult,
)


def _range_result(rf: int, mf: int) -> RangeResult:
    query = RangeQuery(RangePredicate("a", 0, 10))
    return RangeResult(
        query, np.arange(rf, dtype=np.int64), np.arange(mf, dtype=np.int64)
    )


def _agg_result(amnesiac, oracle, active=5, total=10) -> AggregateResult:
    query = AggregateQuery(AggregateFunction.AVG, "a")
    return AggregateResult(query, amnesiac, oracle, active, total)


class TestCollector:
    def test_error_margin_is_micro_average(self):
        coll = BatchPrecisionCollector()
        coll.add(_range_result(90, 10))   # PF 0.9, big query
        coll.add(_range_result(0, 10))    # PF 0.0, small query
        summary = coll.summary()
        # E = (90+0)/(100+10+0+10)... careful: totals 90/(90+10+0+10)
        assert summary.error_margin == pytest.approx(90 / 110)
        assert summary.macro_precision == pytest.approx((0.9 + 0.0) / 2)

    def test_paper_metric_names(self):
        coll = BatchPrecisionCollector()
        coll.add(_range_result(3, 1))
        summary = coll.summary()
        assert summary.total_rf == 3
        assert summary.total_mf == 1
        assert summary.mean_rf == 3.0
        assert summary.mean_mf == 1.0
        assert summary.n_queries == 1

    def test_aggregates_counted(self):
        coll = BatchPrecisionCollector()
        coll.add(_agg_result(4.0, 5.0))
        summary = coll.summary()
        assert summary.n_aggregate == 1
        assert summary.aggregate_mean_relative_error == pytest.approx(0.2)
        assert summary.aggregate_mean_precision == pytest.approx(0.8)
        # Tuple counts flow into E.
        assert summary.total_rf == 5 and summary.total_mf == 5

    def test_mixed_batch(self):
        coll = BatchPrecisionCollector()
        coll.extend([_range_result(10, 0), _agg_result(1.0, 1.0)])
        summary = coll.summary()
        assert summary.n_range == 1 and summary.n_aggregate == 1
        assert summary.aggregate_mean_precision == 1.0

    def test_no_aggregates_yields_none(self):
        coll = BatchPrecisionCollector()
        coll.add(_range_result(1, 0))
        summary = coll.summary()
        assert summary.aggregate_mean_relative_error is None
        assert summary.aggregate_mean_precision is None

    def test_empty_summary_raises(self):
        with pytest.raises(ConfigError):
            BatchPrecisionCollector().summary()

    def test_rejects_unknown_type(self):
        with pytest.raises(ConfigError):
            BatchPrecisionCollector().add("nope")

    def test_all_empty_queries_give_perfect_precision(self):
        coll = BatchPrecisionCollector()
        coll.add(_range_result(0, 0))
        summary = coll.summary()
        assert summary.error_margin == 1.0
        assert summary.macro_precision == 1.0


class TestAmnesiaMap:
    def test_snapshot_accumulation(self):
        amap = AmnesiaMap()
        amap.add_snapshot(0, {0: 1.0})
        amap.add_snapshot(1, {0: 0.8, 1: 1.0})
        assert len(amap) == 2
        assert amap.epochs == [0, 1]
        assert amap.cohort_epochs == [0, 1]
        assert amap.final_row() == {0: 0.8, 1: 1.0}
        assert amap.snapshot(0) == {0: 1.0}

    def test_matrix_with_nan_for_future_cohorts(self):
        amap = AmnesiaMap()
        amap.add_snapshot(0, {0: 1.0})
        amap.add_snapshot(1, {0: 0.5, 1: 1.0})
        epochs, cohorts, matrix = amap.matrix()
        assert epochs == [0, 1] and cohorts == [0, 1]
        assert np.isnan(matrix[0, 1])
        assert matrix[1, 0] == 0.5

    def test_final_fractions_ordered(self):
        amap = AmnesiaMap()
        amap.add_snapshot(0, {1: 0.25, 0: 0.75})
        assert amap.final_fractions().tolist() == [0.75, 0.25]

    def test_validation(self):
        amap = AmnesiaMap()
        amap.add_snapshot(1, {0: 1.0})
        with pytest.raises(ConfigError):
            amap.add_snapshot(1, {0: 0.5})  # duplicate
        with pytest.raises(ConfigError):
            amap.add_snapshot(0, {0: 0.5})  # out of order
        with pytest.raises(ConfigError):
            amap.add_snapshot(2, {0: 1.5})  # bad fraction
        with pytest.raises(ConfigError):
            AmnesiaMap().final_row()
        with pytest.raises(ConfigError):
            AmnesiaMap().matrix()
        with pytest.raises(ConfigError):
            amap.snapshot(99)


class TestReports:
    def _summary(self, e: float) -> BatchPrecisionSummary:
        return BatchPrecisionSummary(
            n_range=1,
            n_aggregate=0,
            total_rf=int(e * 100),
            total_mf=100 - int(e * 100),
            macro_precision=e,
            error_margin=e,
            aggregate_mean_relative_error=None,
            aggregate_mean_precision=None,
        )

    def test_epoch_report_shortcuts(self):
        report = EpochReport(
            epoch=1, active_rows=90, total_rows=120, inserted=20,
            forgotten=20, precision=self._summary(0.75),
        )
        assert report.forgotten_rows == 30
        assert report.error_margin == 0.75

    def test_epoch_report_without_queries(self):
        report = EpochReport(
            epoch=0, active_rows=100, total_rows=100, inserted=100,
            forgotten=0, precision=None,
        )
        assert report.error_margin is None

    def test_run_report_series(self):
        epochs = [
            EpochReport(0, 100, 100, 100, 0, None),
            EpochReport(1, 100, 120, 20, 20, self._summary(0.9)),
            EpochReport(2, 100, 140, 20, 20, self._summary(0.7)),
        ]
        run = RunReport("fifo", "uniform", 100, 0.2, epochs)
        assert run.precision_series() == [0.9, 0.7]
        assert run.macro_precision_series() == [0.9, 0.7]
        assert run.aggregate_precision_series() == []
        assert run.final_epoch().epoch == 2

    def test_run_report_empty_raises(self):
        run = RunReport("fifo", "uniform", 100, 0.2, [])
        with pytest.raises(ValueError):
            run.final_epoch()
