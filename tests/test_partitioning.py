"""Tests for repro.partitioning: adaptive per-range amnesia."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, QueryError
from repro.amnesia import FifoAmnesia, UniformAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase


def make_store(total_budget=100, boundaries=(0, 500, 1000)):
    return PartitionedAmnesiaDatabase(
        "a", boundaries, total_budget, policy_factory=FifoAmnesia, seed=7
    )


class TestTopology:
    def test_even_budget_split(self):
        store = make_store(total_budget=101, boundaries=(0, 100, 200, 300))
        assert [p.budget for p in store.partitions] == [34, 34, 33]
        assert sum(p.budget for p in store.partitions) == 101

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_store(boundaries=(0,))
        with pytest.raises(ConfigError):
            make_store(boundaries=(0, 100, 100))
        with pytest.raises(ConfigError):
            make_store(total_budget=1, boundaries=(0, 10, 20))


class TestRouting:
    def test_values_land_in_their_partition(self):
        store = make_store()
        store.insert({"a": np.array([10, 600, 499, 500])})
        low_part, high_part = store.partitions
        assert low_part.db.total_rows == 2   # 10, 499
        assert high_part.db.total_rows == 2  # 600, 500

    def test_out_of_domain_values_clamped(self):
        store = make_store()
        store.insert({"a": np.array([-50, 5000])})
        assert store.partitions[0].db.total_rows == 1
        assert store.partitions[1].db.total_rows == 1

    def test_rejects_unknown_column(self):
        store = make_store()
        with pytest.raises(QueryError):
            store.insert({"b": np.array([1])})


class TestQueries:
    def test_range_query_merges_exactly(self, rng):
        store = make_store(total_budget=2000)
        values = rng.integers(0, 1000, 1000)
        store.insert({"a": values})
        result = store.range_query(400, 600)
        expected = int(((values >= 400) & (values < 600)).sum())
        assert result.rf == expected
        assert result.mf == 0
        assert result.precision == 1.0

    def test_range_query_counts_forgotten(self):
        store = make_store(total_budget=10)  # 5 per partition
        store.insert({"a": np.concatenate([np.arange(100), np.arange(500, 600)])})
        result = store.range_query(0, 1000)
        assert result.rf == 10
        assert result.mf == 190
        assert result.precision == pytest.approx(0.05)

    def test_query_hits_tracked_per_partition(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)     # only partition 0
        store.range_query(0, 1000)    # both
        assert store.partitions[0].query_hits == 2
        assert store.partitions[1].query_hits == 1

    def test_aggregate_merge_matches_global(self, rng):
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        for fn, expected in (
            ("avg", values.mean()),
            ("sum", values.sum()),
            ("count", values.size),
            ("min", values.min()),
            ("max", values.max()),
        ):
            amnesiac, oracle = store.aggregate(fn)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_var_not_supported(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(QueryError):
            store.aggregate("var")


class TestRebalance:
    def test_budget_follows_traffic(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=UniformAmnesia, seed=3
        )
        store.insert({"a": np.arange(0, 1000)})
        # Hammer the low partition only.
        for _ in range(50):
            store.range_query(0, 400)
        budgets = store.rebalance(floor=10)
        assert budgets[0] > budgets[1]
        assert sum(budgets.values()) == 100
        # Shrunken partition forgot down immediately.
        assert store.partitions[1].db.active_count <= budgets[1]
        # Hit counters reset for the next adaptation window.
        assert all(p.query_hits == 0 for p in store.partitions)

    def test_precision_improves_for_hot_region(self):
        """The §4.4 payoff: the hot range keeps more of its history."""

        def run(adaptive: bool) -> float:
            store = PartitionedAmnesiaDatabase(
                "a", (0, 500, 1000), 200,
                policy_factory=UniformAmnesia, seed=5,
            )
            rng = np.random.default_rng(8)
            last = None
            for _ in range(8):
                store.insert({"a": rng.integers(0, 1000, 200)})
                for _ in range(20):
                    last = store.range_query(0, 300)
                if adaptive:
                    store.rebalance(floor=20)
            return last.precision

        assert run(adaptive=True) > run(adaptive=False) + 0.05

    def test_rebalance_validation(self):
        store = make_store(total_budget=10)
        with pytest.raises(ConfigError):
            store.rebalance(floor=0)
        with pytest.raises(ConfigError):
            store.rebalance(floor=6)  # 2 partitions * 6 > 10

    def test_stats(self):
        store = make_store()
        store.insert({"a": np.array([1, 600])})
        stats = store.stats()
        assert stats["partitions"] == 2
        assert stats["active_rows"] == 2
        assert len(stats["budgets"]) == 2
