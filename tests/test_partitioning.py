"""Tests for repro.partitioning: adaptive per-range amnesia."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, QueryError
from repro.amnesia import FifoAmnesia, UniformAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase


def make_store(total_budget=100, boundaries=(0, 500, 1000)):
    return PartitionedAmnesiaDatabase(
        "a", boundaries, total_budget, policy_factory=FifoAmnesia, seed=7
    )


class TestTopology:
    def test_even_budget_split(self):
        store = make_store(total_budget=101, boundaries=(0, 100, 200, 300))
        assert [p.budget for p in store.partitions] == [34, 34, 33]
        assert sum(p.budget for p in store.partitions) == 101

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_store(boundaries=(0,))
        with pytest.raises(ConfigError):
            make_store(boundaries=(0, 100, 100))
        with pytest.raises(ConfigError):
            make_store(total_budget=1, boundaries=(0, 10, 20))


class TestRouting:
    def test_values_land_in_their_partition(self):
        store = make_store()
        store.insert({"a": np.array([10, 600, 499, 500])})
        low_part, high_part = store.partitions
        assert low_part.db.total_rows == 2   # 10, 499
        assert high_part.db.total_rows == 2  # 600, 500

    def test_out_of_domain_values_clamped(self):
        store = make_store()
        store.insert({"a": np.array([-50, 5000])})
        assert store.partitions[0].db.total_rows == 1
        assert store.partitions[1].db.total_rows == 1

    def test_rejects_unknown_column(self):
        store = make_store()
        with pytest.raises(QueryError):
            store.insert({"b": np.array([1])})


class TestQueries:
    def test_range_query_merges_exactly(self, rng):
        store = make_store(total_budget=2000)
        values = rng.integers(0, 1000, 1000)
        store.insert({"a": values})
        result = store.range_query(400, 600)
        expected = int(((values >= 400) & (values < 600)).sum())
        assert result.rf == expected
        assert result.mf == 0
        assert result.precision == 1.0

    def test_range_query_counts_forgotten(self):
        store = make_store(total_budget=10)  # 5 per partition
        store.insert({"a": np.concatenate([np.arange(100), np.arange(500, 600)])})
        result = store.range_query(0, 1000)
        assert result.rf == 10
        assert result.mf == 190
        assert result.precision == pytest.approx(0.05)

    def test_query_hits_tracked_per_partition(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)     # only partition 0
        store.range_query(0, 1000)    # both
        assert store.partitions[0].query_hits == 2
        assert store.partitions[1].query_hits == 1

    def test_aggregate_merge_matches_global(self, rng):
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        for fn, expected in (
            ("avg", values.mean()),
            ("sum", values.sum()),
            ("count", values.size),
            ("min", values.min()),
            ("max", values.max()),
        ):
            amnesiac, oracle = store.aggregate(fn)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_var_and_std_merge_exactly(self, rng):
        """Satellite: VAR/STD now merge via per-shard moments."""
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        for fn, expected in (("var", values.var()), ("std", values.std())):
            amnesiac, oracle = store.aggregate(fn)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_var_tracks_oracle_under_forgetting(self):
        store = make_store(total_budget=10)
        store.insert({"a": np.concatenate([np.arange(100), np.arange(500, 600)])})
        all_values = np.concatenate([np.arange(100), np.arange(500, 600)])
        _, oracle = store.aggregate("var")
        assert oracle == pytest.approx(all_values.var())

    def test_windowed_aggregates_match_numpy(self, rng):
        """Satellite: low/high windows now reach the partitioned store."""
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        window = values[(values >= 250) & (values < 750)]
        for fn, expected in (
            ("avg", window.mean()),
            ("sum", window.sum()),
            ("count", window.size),
            ("var", window.var()),
            ("std", window.std()),
        ):
            amnesiac, oracle = store.aggregate(fn, 250, 750)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_windowed_aggregate_requires_both_bounds(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(ConfigError):
            store.aggregate("avg", low=10)

    def test_aggregate_empty_window_null_semantics(self):
        store = make_store()
        store.insert({"a": np.array([1, 600])})
        amnesiac, oracle = store.aggregate("avg", 100, 200)
        assert amnesiac is None and oracle is None
        amnesiac, oracle = store.aggregate("count", 100, 200)
        assert amnesiac == 0.0 and oracle == 0.0


class TestOutOfRangeQueries:
    """Regression: inserts clamp routing into edge partitions, so the
    query side must reach them for out-of-domain ranges too."""

    def test_low_side_values_found(self):
        store = make_store()
        store.insert({"a": np.array([-50, 10])})
        result = store.range_query(-100, 0)
        assert result.rf == 1
        assert store.range_query(-100, 20).rf == 2

    def test_high_side_values_found(self):
        store = make_store()
        store.insert({"a": np.array([600, 5000])})
        assert store.range_query(1000, 6000).rf == 1
        assert store.range_query(4999, 5001).rf == 1

    def test_forgotten_out_of_range_rows_counted_in_mf(self):
        store = make_store(total_budget=2)  # 1 per partition
        store.insert({"a": np.array([-10, -20, -30])})
        result = store.range_query(-100, 0)
        assert result.oracle_count == 3
        assert result.mf == 2

    def test_covers_is_open_ended_at_the_edges(self):
        store = make_store()
        low_shard, high_shard = store.partitions
        assert low_shard.covers(-100, -50)
        assert high_shard.covers(2000, 3000)
        assert not low_shard.covers(600, 700)
        assert not high_shard.covers(-100, 0)
        assert not low_shard.covers(10, 10)  # empty range


class TestPlannerRouting:
    """The tentpole: every shard read goes through its own planner."""

    def test_shard_pruning_is_a_planner_decision(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(0, 100)
        assert result.shards_executed == 1
        assert result.shards_pruned == 1
        # The pruned shard's planner recorded the decision itself.
        assert store.partitions[1].db.planner.stats()["paths"]["pruned"] == 1

    def test_scan_mode_never_prunes_shards(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=FifoAmnesia,
            seed=7, plan="scan",
        )
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(0, 100)
        assert result.shards_executed == 2
        assert result.shards_pruned == 0

    def test_plan_mode_reaches_every_shard(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=FifoAmnesia,
            seed=7, plan="cost",
        )
        assert store.plan_mode == "cost"
        assert all(p.db.plan_mode == "cost" for p in store.partitions)
        assert all(
            p.db.planner.value_bounds["a"]
            == (p.bound_low, p.bound_high)
            for p in store.partitions
        )

    def test_explain_previews_per_shard_plans(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        plans = dict(store.explain(0, 100))
        assert plans[0].mode in ("zonemap", "index", "scan")
        assert plans[1].mode == "pruned"

    def test_plan_report_spans_shards(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)
        report = store.plan_report()
        assert "shard 0 [0, 500)" in report
        assert "shard 1 [500, 1000)" in report
        assert "shard-level prunes 1" in report

    def test_reversed_range_raises(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(QueryError):
            store.range_query(100, 50)

    def test_empty_range_short_circuits(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(5, 5)
        assert (result.rf, result.mf) == (0, 0)
        assert (result.shards_executed, result.shards_pruned) == (0, 0)
        # No shard planner ran and no traffic was counted.
        assert all(p.query_hits == 0 for p in store.partitions)
        assert all(
            p.db.planner.stats()["queries_planned"] == 0
            for p in store.partitions
        )

    def test_empty_store_answers_empty(self):
        store = make_store()
        result = store.range_query(0, 100)
        assert (result.rf, result.mf) == (0, 0)
        assert store.aggregate("avg") == (None, None)

    def test_stats_reports_plan_and_prunes(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)
        stats = store.stats()
        assert stats["plan"] == store.plan_mode
        assert stats["shard_prunes"] == [0, 1]


class TestRebalance:
    def test_budget_follows_traffic(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=UniformAmnesia, seed=3
        )
        store.insert({"a": np.arange(0, 1000)})
        # Hammer the low partition only.
        for _ in range(50):
            store.range_query(0, 400)
        budgets = store.rebalance(floor=10)
        assert budgets[0] > budgets[1]
        assert sum(budgets.values()) == 100
        # Shrunken partition forgot down immediately.
        assert store.partitions[1].db.active_count <= budgets[1]
        # Hit counters reset for the next adaptation window.
        assert all(p.query_hits == 0 for p in store.partitions)

    def test_precision_improves_for_hot_region(self):
        """The §4.4 payoff: the hot range keeps more of its history."""

        def run(adaptive: bool) -> float:
            store = PartitionedAmnesiaDatabase(
                "a", (0, 500, 1000), 200,
                policy_factory=UniformAmnesia, seed=5,
            )
            rng = np.random.default_rng(8)
            last = None
            for _ in range(8):
                store.insert({"a": rng.integers(0, 1000, 200)})
                for _ in range(20):
                    last = store.range_query(0, 300)
                if adaptive:
                    store.rebalance(floor=20)
            return last.precision

        assert run(adaptive=True) > run(adaptive=False) + 0.05

    def test_rebalance_validation(self):
        store = make_store(total_budget=10)
        with pytest.raises(ConfigError):
            store.rebalance(floor=0)
        with pytest.raises(ConfigError):
            store.rebalance(floor=6)  # 2 partitions * 6 > 10

    def test_stats(self):
        store = make_store()
        store.insert({"a": np.array([1, 600])})
        stats = store.stats()
        assert stats["partitions"] == 2
        assert stats["active_rows"] == 2
        assert len(stats["budgets"]) == 2
