"""Tests for repro.partitioning: adaptive per-range amnesia."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import AmnesiaDatabase
from repro._util.errors import ConfigError, QueryError
from repro.amnesia import FifoAmnesia, UniformAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase


def make_store(total_budget=100, boundaries=(0, 500, 1000)):
    return PartitionedAmnesiaDatabase(
        "a", boundaries, total_budget, policy_factory=FifoAmnesia, seed=7
    )


class TestTopology:
    def test_even_budget_split(self):
        store = make_store(total_budget=101, boundaries=(0, 100, 200, 300))
        assert [p.budget for p in store.partitions] == [34, 34, 33]
        assert sum(p.budget for p in store.partitions) == 101

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_store(boundaries=(0,))
        with pytest.raises(ConfigError):
            make_store(boundaries=(0, 100, 100))
        with pytest.raises(ConfigError):
            make_store(total_budget=1, boundaries=(0, 10, 20))


class TestRouting:
    def test_values_land_in_their_partition(self):
        store = make_store()
        store.insert({"a": np.array([10, 600, 499, 500])})
        low_part, high_part = store.partitions
        assert low_part.db.total_rows == 2   # 10, 499
        assert high_part.db.total_rows == 2  # 600, 500

    def test_out_of_domain_values_clamped(self):
        store = make_store()
        store.insert({"a": np.array([-50, 5000])})
        assert store.partitions[0].db.total_rows == 1
        assert store.partitions[1].db.total_rows == 1

    def test_rejects_unknown_column(self):
        store = make_store()
        with pytest.raises(QueryError):
            store.insert({"b": np.array([1])})

    def test_lossy_float_insert_rejected(self):
        """The old path silently truncated 2.7 to 2; now it refuses."""
        store = make_store()
        with pytest.raises(QueryError, match="without loss"):
            store.insert({"a": np.array([1.0, 2.7])})
        assert store.partitions[0].db.total_rows == 0

    def test_integer_valued_floats_accepted(self):
        store = make_store()
        store.insert({"a": np.array([10.0, 600.0])})
        assert store.range_query(0, 1000).rf == 2

    def test_nan_insert_rejected(self):
        store = make_store()
        with pytest.raises(QueryError, match="finite"):
            store.enqueue({"a": np.array([1.0, np.nan])})
        assert store.pending_batches == 0


class TestQueries:
    def test_range_query_merges_exactly(self, rng):
        store = make_store(total_budget=2000)
        values = rng.integers(0, 1000, 1000)
        store.insert({"a": values})
        result = store.range_query(400, 600)
        expected = int(((values >= 400) & (values < 600)).sum())
        assert result.rf == expected
        assert result.mf == 0
        assert result.precision == 1.0

    def test_range_query_counts_forgotten(self):
        store = make_store(total_budget=10)  # 5 per partition
        store.insert({"a": np.concatenate([np.arange(100), np.arange(500, 600)])})
        result = store.range_query(0, 1000)
        assert result.rf == 10
        assert result.mf == 190
        assert result.precision == pytest.approx(0.05)

    def test_query_hits_tracked_per_partition(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)     # only partition 0
        store.range_query(0, 1000)    # both
        assert store.partitions[0].query_hits == 2
        assert store.partitions[1].query_hits == 1

    def test_aggregate_merge_matches_global(self, rng):
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        for fn, expected in (
            ("avg", values.mean()),
            ("sum", values.sum()),
            ("count", values.size),
            ("min", values.min()),
            ("max", values.max()),
        ):
            amnesiac, oracle = store.aggregate(fn)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_var_and_std_merge_exactly(self, rng):
        """Satellite: VAR/STD now merge via per-shard moments."""
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        for fn, expected in (("var", values.var()), ("std", values.std())):
            amnesiac, oracle = store.aggregate(fn)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_var_tracks_oracle_under_forgetting(self):
        store = make_store(total_budget=10)
        store.insert({"a": np.concatenate([np.arange(100), np.arange(500, 600)])})
        all_values = np.concatenate([np.arange(100), np.arange(500, 600)])
        _, oracle = store.aggregate("var")
        assert oracle == pytest.approx(all_values.var())

    def test_windowed_aggregates_match_numpy(self, rng):
        """Satellite: low/high windows now reach the partitioned store."""
        store = make_store(total_budget=5000)
        values = rng.integers(0, 1000, 2000)
        store.insert({"a": values})
        window = values[(values >= 250) & (values < 750)]
        for fn, expected in (
            ("avg", window.mean()),
            ("sum", window.sum()),
            ("count", window.size),
            ("var", window.var()),
            ("std", window.std()),
        ):
            amnesiac, oracle = store.aggregate(fn, 250, 750)
            assert oracle == pytest.approx(expected), fn
            assert amnesiac == pytest.approx(expected), fn

    def test_windowed_aggregate_requires_both_bounds(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(ConfigError):
            store.aggregate("avg", low=10)

    def test_aggregate_empty_window_null_semantics(self):
        store = make_store()
        store.insert({"a": np.array([1, 600])})
        amnesiac, oracle = store.aggregate("avg", 100, 200)
        assert amnesiac is None and oracle is None
        amnesiac, oracle = store.aggregate("count", 100, 200)
        assert amnesiac == 0.0 and oracle == 0.0


class TestOutOfRangeQueries:
    """Regression: inserts clamp routing into edge partitions, so the
    query side must reach them for out-of-domain ranges too."""

    def test_low_side_values_found(self):
        store = make_store()
        store.insert({"a": np.array([-50, 10])})
        result = store.range_query(-100, 0)
        assert result.rf == 1
        assert store.range_query(-100, 20).rf == 2

    def test_high_side_values_found(self):
        store = make_store()
        store.insert({"a": np.array([600, 5000])})
        assert store.range_query(1000, 6000).rf == 1
        assert store.range_query(4999, 5001).rf == 1

    def test_forgotten_out_of_range_rows_counted_in_mf(self):
        store = make_store(total_budget=2)  # 1 per partition
        store.insert({"a": np.array([-10, -20, -30])})
        result = store.range_query(-100, 0)
        assert result.oracle_count == 3
        assert result.mf == 2

    def test_covers_is_open_ended_at_the_edges(self):
        store = make_store()
        low_shard, high_shard = store.partitions
        assert low_shard.covers(-100, -50)
        assert high_shard.covers(2000, 3000)
        assert not low_shard.covers(600, 700)
        assert not high_shard.covers(-100, 0)
        assert not low_shard.covers(10, 10)  # empty range


class TestPlannerRouting:
    """The tentpole: every shard read goes through its own planner."""

    def test_shard_pruning_is_a_planner_decision(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(0, 100)
        assert result.shards_executed == 1
        assert result.shards_pruned == 1
        # The pruned shard's planner recorded the decision itself.
        assert store.partitions[1].db.planner.stats()["paths"]["pruned"] == 1

    def test_scan_mode_never_prunes_shards(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=FifoAmnesia,
            seed=7, plan="scan",
        )
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(0, 100)
        assert result.shards_executed == 2
        assert result.shards_pruned == 0

    def test_plan_mode_reaches_every_shard(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=FifoAmnesia,
            seed=7, plan="cost",
        )
        assert store.plan_mode == "cost"
        assert all(p.db.plan_mode == "cost" for p in store.partitions)
        assert all(
            p.db.planner.value_bounds["a"]
            == (p.bound_low, p.bound_high)
            for p in store.partitions
        )

    def test_explain_previews_per_shard_plans(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        plans = dict(store.explain(0, 100))
        assert plans[0].mode in ("zonemap", "index", "scan")
        assert plans[1].mode == "pruned"

    def test_plan_report_spans_shards(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)
        report = store.plan_report()
        assert "shard 0 [0, 500)" in report
        assert "shard 1 [500, 1000)" in report
        assert "shard-level prunes 1" in report

    def test_reversed_range_raises(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(QueryError):
            store.range_query(100, 50)

    def test_empty_range_short_circuits(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        result = store.range_query(5, 5)
        assert (result.rf, result.mf) == (0, 0)
        assert (result.shards_executed, result.shards_pruned) == (0, 0)
        # No shard planner ran and no traffic was counted.
        assert all(p.query_hits == 0 for p in store.partitions)
        assert all(
            p.db.planner.stats()["queries_planned"] == 0
            for p in store.partitions
        )

    def test_empty_store_answers_empty(self):
        store = make_store()
        result = store.range_query(0, 100)
        assert (result.rf, result.mf) == (0, 0)
        assert store.aggregate("avg") == (None, None)

    def test_stats_reports_plan_and_prunes(self):
        store = make_store()
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)
        stats = store.stats()
        assert stats["plan"] == store.plan_mode
        assert stats["shard_prunes"] == [0, 1]


class TestRebalance:
    def test_budget_follows_traffic(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 100, policy_factory=UniformAmnesia, seed=3
        )
        store.insert({"a": np.arange(0, 1000)})
        # Hammer the low partition only.
        for _ in range(50):
            store.range_query(0, 400)
        budgets = store.rebalance(floor=10)
        assert budgets[0] > budgets[1]
        assert sum(budgets.values()) == 100
        # Shrunken partition forgot down immediately.
        assert store.partitions[1].db.active_count <= budgets[1]
        # Hit counters reset for the next adaptation window.
        assert all(p.query_hits == 0 for p in store.partitions)

    def test_precision_improves_for_hot_region(self):
        """The §4.4 payoff: the hot range keeps more of its history."""

        def run(adaptive: bool) -> float:
            store = PartitionedAmnesiaDatabase(
                "a", (0, 500, 1000), 200,
                policy_factory=UniformAmnesia, seed=5,
            )
            rng = np.random.default_rng(8)
            last = None
            for _ in range(8):
                store.insert({"a": rng.integers(0, 1000, 200)})
                for _ in range(20):
                    last = store.range_query(0, 300)
                if adaptive:
                    store.rebalance(floor=20)
            return last.precision

        assert run(adaptive=True) > run(adaptive=False) + 0.05

    def test_rebalance_validation(self):
        store = make_store(total_budget=10)
        with pytest.raises(ConfigError):
            store.rebalance(floor=0)
        with pytest.raises(ConfigError):
            store.rebalance(floor=6)  # 2 partitions * 6 > 10

    def test_stats(self):
        store = make_store()
        store.insert({"a": np.array([1, 600])})
        stats = store.stats()
        assert stats["partitions"] == 2
        assert stats["active_rows"] == 2
        assert len(stats["budgets"]) == 2
        assert stats["workers"] == 1
        assert stats["rebalance"] == "hits"
        assert stats["boundaries"] == [0, 500, 1000]

    def test_rows_signal_weighs_queries_by_matched_rows(self):
        """``rows`` rebalancing pulls budget toward the shard whose
        data the queries actually touched, even when hit counts tie."""
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 200,
            policy_factory=UniformAmnesia, seed=3,
        )
        # Shard 0 holds 10x the rows of shard 1.
        store.insert({"a": np.concatenate([
            np.arange(0, 500), np.arange(500, 1000, 10),
        ])})
        for _ in range(10):
            store.range_query(0, 1000)  # covers (hits) both equally
        assert store.partitions[0].query_hits == store.partitions[1].query_hits
        assert store.partitions[0].query_rows > store.partitions[1].query_rows
        hits_budgets = dict(
            zip((0, 1), store.stats()["budgets"])
        )
        budgets = store.rebalance(floor=10, policy="rows")
        assert budgets[0] > budgets[1]
        assert budgets[0] > hits_budgets[0]  # even split before
        # Counters reset for the next window.
        assert all(p.query_rows == 0 for p in store.partitions)

    def test_rebalance_rejects_unknown_policy(self):
        store = make_store()
        store.insert({"a": np.array([1])})
        with pytest.raises(Exception):
            store.rebalance(policy="entropy")


class TestParallelFanout:
    """The tentpole: per-shard pipelines fan out over a thread pool."""

    def _build(self, workers, boundaries=(0, 250, 500, 750, 1000)):
        store = PartitionedAmnesiaDatabase(
            "a", boundaries, 400,
            policy_factory=FifoAmnesia, seed=7, workers=workers,
        )
        rng = np.random.default_rng(11)
        for _ in range(4):
            store.insert({"a": rng.integers(-50, 1100, 200)})
        return store

    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            self._build(workers=0)

    def test_fanout_matches_sequential(self):
        sequential = self._build(workers=1)
        parallel = self._build(workers=4)
        queries = [(-100, 100), (0, 1000), (200, 260), (900, 1200), (5, 5)]
        for low, high in queries:
            a = sequential.range_query(low, high)
            b = parallel.range_query(low, high)
            assert (a.rf, a.mf, a.shards_executed, a.shards_pruned) == (
                b.rf, b.mf, b.shards_executed, b.shards_pruned
            )
        for fn in ("avg", "var", "std", "count"):
            assert sequential.aggregate(fn) == parallel.aggregate(fn)
            assert sequential.aggregate(fn, 100, 800) == (
                parallel.aggregate(fn, 100, 800)
            )
        parallel.close()

    def test_counters_race_free_under_concurrent_queries(self):
        """Satellite: traffic counters survive concurrent callers.

        Eight caller threads hammer a 4-worker store; per-shard
        hit/row counters must land exactly where a sequential replay
        puts them (increments are lock-protected, not lost)."""
        sequential = self._build(workers=1)
        parallel = self._build(workers=4)
        queries = [(0, 300), (200, 800), (600, 1200), (-100, 150)] * 25
        expected = [sequential.range_query(lo, hi) for lo, hi in queries]
        with ThreadPoolExecutor(max_workers=8) as callers:
            got = list(
                callers.map(lambda q: parallel.range_query(*q), queries)
            )
        assert [(r.rf, r.mf) for r in got] == [
            (r.rf, r.mf) for r in expected
        ]
        assert [p.query_hits for p in parallel.partitions] == [
            p.query_hits for p in sequential.partitions
        ]
        assert [p.query_rows for p in parallel.partitions] == [
            p.query_rows for p in sequential.partitions
        ]
        parallel.close()

    def test_close_is_idempotent_and_store_survives(self):
        store = self._build(workers=4)
        assert store.range_query(0, 1000).oracle_count > 0
        store.close()
        store.close()
        assert store.range_query(0, 1000).oracle_count > 0  # pool rebuilds
        store.close()

    def test_context_manager_closes_pool(self):
        with self._build(workers=2) as store:
            store.range_query(0, 500)
        assert store._fanout._pool is None

    def test_facade_entry_point(self):
        """AmnesiaDatabase.partitioned threads workers/rebalance through."""
        store = AmnesiaDatabase.partitioned(
            "a", (0, 500, 1000), 100,
            policy_factory=FifoAmnesia, workers=3, rebalance="rows",
        )
        assert isinstance(store, PartitionedAmnesiaDatabase)
        assert store.workers == 3
        assert store.rebalance_policy == "rows"


class TestIngestQueue:
    """The batched write seam: enqueue routes, flush publishes."""

    def test_enqueued_rows_invisible_until_flush(self):
        store = make_store()
        store.enqueue({"a": np.arange(100)})
        assert store.pending_batches == 1
        assert store.ingest_epoch == 0
        result = store.range_query(0, 1000)
        assert result.rf + result.mf == 0
        store.flush()
        assert store.pending_batches == 0
        assert store.ingest_epoch == 1
        result = store.range_query(0, 1000)
        assert result.rf + result.mf == 100

    def test_flush_publishes_whole_backlog_as_one_epoch(self):
        store = make_store()
        for start in (0, 200, 400):
            store.enqueue({"a": np.arange(start, start + 50)})
        assert store.pending_batches == 3
        assert store.flush() == 3
        assert store.ingest_epoch == 3
        assert store.pending_batches == 0

    def test_flush_without_backlog_is_a_noop(self):
        store = make_store()
        store.insert({"a": np.arange(10)})
        assert store.ingest_epoch == 1
        assert store.flush() == 1  # returns the published epoch unchanged

    def test_insert_equals_enqueue_plus_flush(self):
        one = make_store()
        two = make_store()
        batches = [np.arange(0, 60), np.arange(300, 420), np.arange(700, 790)]
        for batch in batches:
            one.insert({"a": batch})
        for batch in batches:
            two.enqueue({"a": batch})
        two.flush()
        for p1, p2 in zip(one.partitions, two.partitions):
            assert np.array_equal(
                p1.db.table.values("a"), p2.db.table.values("a")
            )
            assert np.array_equal(
                p1.db.table.insert_epochs(), p2.db.table.insert_epochs()
            )
            assert p1.db.active_count == p2.db.active_count

    def test_enqueue_validation_leaves_queue_untouched(self):
        store = make_store()
        with pytest.raises(QueryError):
            store.enqueue({"b": np.arange(3)})
        with pytest.raises(QueryError):
            store.enqueue({"a": np.array([1.5])})
        assert store.pending_batches == 0
        assert all(not p.pending for p in store.partitions)

    def test_rebalance_drains_backlog_first(self):
        store = make_store()
        store.enqueue({"a": np.arange(100)})
        store.rebalance()
        assert store.pending_batches == 0
        assert store.ingest_epoch == 1
        result = store.range_query(0, 1000)
        assert result.rf + result.mf == 100

    def test_stats_and_report_expose_ingest_state(self):
        store = make_store()
        store.enqueue({"a": np.arange(10)})
        stats = store.stats()
        assert stats["pending_batches"] == 1
        assert stats["ingest_epoch"] == 0
        assert "ingest epoch 0 (1 queued)" in store.plan_report()
        store.flush()
        assert "ingest epoch 1 (0 queued)" in store.plan_report()


class TestMultiWaySplit:
    """Hist-mode adaptive splits cut several quantiles at once when
    the hotness warrants it."""

    def _hot_store(self, n_shards=4, budget=400):
        boundaries = tuple(range(0, 1001, 1000 // n_shards))
        store = PartitionedAmnesiaDatabase(
            "a",
            boundaries,
            budget,
            policy_factory=FifoAmnesia,
            seed=7,
            rebalance="adaptive",
            split_threshold=1.5,
            stats="hist",
            max_partitions=16,
        )
        rng = np.random.default_rng(5)
        for _ in range(3):
            store.insert({"a": rng.integers(0, 1000, 200)})
        return store

    def test_scorching_shard_splits_multiway(self):
        store = self._hot_store()
        # All traffic on the lowest shard: share 1.0 of 4 shards at
        # threshold 1.5 → hotness 2.67 → a 3-way cut (two medians).
        for _ in range(12):
            store.range_query(0, 240)
        store.rebalance(floor=10)
        assert any("at medians" in e for e in store.adaptations)
        n_before = 4
        # One merge funds part of the growth: 4 - 1 + 2 = 5 shards.
        assert store.partition_count == n_before + 1
        assert store.boundaries[0] == 0 and store.boundaries[-1] == 1000

    def test_multiway_split_loses_no_history(self):
        store = self._hot_store()
        before = np.sort(
            np.concatenate(
                [p.db.table.values("a") for p in store.partitions]
            )
        )
        for _ in range(12):
            store.range_query(0, 240)
        store.rebalance(floor=10)
        after = np.sort(
            np.concatenate(
                [p.db.table.values("a") for p in store.partitions]
            )
        )
        assert np.array_equal(before, after)

    def test_mild_overshoot_still_splits_two_ways(self):
        store = self._hot_store()
        # Spread traffic: hottest share just over threshold → 2-way.
        for _ in range(6):
            store.range_query(0, 240)
        for _ in range(3):
            store.range_query(250, 1000)
        store.rebalance(floor=10)
        split_events = [e for e in store.adaptations if "split shard" in e]
        if split_events:
            assert all("at medians" not in e for e in split_events)

    def test_uniform_stats_still_cuts_midpoint_only(self):
        store = PartitionedAmnesiaDatabase(
            "a",
            (0, 250, 500, 750, 1000),
            400,
            policy_factory=FifoAmnesia,
            seed=7,
            rebalance="adaptive",
            split_threshold=1.5,
            stats="uniform",
            max_partitions=16,
        )
        rng = np.random.default_rng(5)
        for _ in range(3):
            store.insert({"a": rng.integers(0, 1000, 200)})
        for _ in range(12):
            store.range_query(0, 240)
        store.rebalance(floor=10)
        split_events = [e for e in store.adaptations if "split shard" in e]
        assert split_events
        assert all("at midpoint" in e for e in split_events)


class TestTrafficCountersPlanIndependent:
    """Satellite regression: rebalance() feeds on coverage-based
    counters, so its inputs — and therefore budgets and boundaries —
    cannot depend on which access path answered the queries."""

    def _drive(self, plan, workers=1, rebalance="adaptive"):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 250, 500, 1000), 150,
            policy_factory=FifoAmnesia, seed=5, plan=plan,
            workers=workers, rebalance=rebalance, split_threshold=1.5,
        )
        rng = np.random.default_rng(2)
        trails = []
        for _ in range(4):
            store.insert({"a": rng.integers(0, 1000, 100)})
            for _ in range(6):
                store.range_query(0, 200)  # skew at the low shard
            store.range_query(300, 900)
            trails.append([
                (p.low, p.high, p.query_hits, p.query_rows)
                for p in store.partitions
            ])
            store.rebalance(floor=10)
            trails.append(store.boundaries)
        trails.append(store.adaptations)
        store.close()
        return trails

    @pytest.mark.parametrize("plan", ("auto", "zonemap", "cost"))
    def test_counters_match_scan_baseline(self, plan):
        assert self._drive(plan) == self._drive("scan")

    @pytest.mark.parametrize("workers", (1, 4))
    def test_counters_match_under_fanout(self, workers):
        assert self._drive("cost", workers=workers) == self._drive("scan")

    def test_trajectory_contains_boundary_adaptation(self):
        adaptations = self._drive("scan")[-1]
        assert any("split shard" in event for event in adaptations)


class TestAdaptiveBoundaries:
    """Workload-adaptive splits and merges of the partition layout."""

    def _skewed_store(self, total_budget=4000, **kwargs):
        defaults = dict(
            policy_factory=FifoAmnesia, seed=13, rebalance="adaptive",
            split_threshold=1.5,
        )
        defaults.update(kwargs)
        store = PartitionedAmnesiaDatabase(
            "a", (0, 250, 500, 750, 1000), total_budget, **defaults
        )
        rng = np.random.default_rng(6)
        store.insert({"a": rng.integers(0, 1000, 2000)})
        return store

    def test_hot_shard_splits_and_cold_pair_merges(self):
        store = self._skewed_store()
        for _ in range(20):
            store.range_query(0, 240)
        store.rebalance(floor=10)
        # The hot shard split at its midpoint; the coldest adjacent
        # pair (all ties resolve to the lowest index) was merged to
        # fund it, so the count is unchanged.
        assert store.boundaries == (0, 125, 250, 750, 1000)
        assert store.partition_count == 4  # split funded by a merge
        assert [p.index for p in store.partitions] == [0, 1, 2, 3]
        assert any(
            "split shard [0, 250) at midpoint 125" in e
            for e in store.adaptations
        )
        assert any("merged shards [250, 500) + [500, 750)" in e
                   for e in store.adaptations)

    def test_split_loses_no_history(self):
        """Migrated shards answer every query exactly as before."""
        # Budget high enough that even post-rebalance floor shares
        # exceed any shard's row count: no forgetting anywhere, so the
        # only thing that can change answers is a migration bug.
        store = self._skewed_store(total_budget=10_000)
        values = np.concatenate([
            p.db.table.values("a") for p in store.partitions
        ])
        access_before = sum(
            int(p.db.table.access_counts().sum()) for p in store.partitions
        )
        before = store.range_query(0, 1000)
        for _ in range(20):
            store.range_query(0, 240)
        store.rebalance(floor=2000)
        after = store.range_query(0, 1000)
        assert (after.rf, after.mf) == (before.rf, before.mf)
        assert after.oracle_count == values.size
        # Every row landed in the shard owning its value range.
        for partition in store.partitions:
            shard_values = partition.db.table.values("a")
            if partition.bound_low is not None:
                assert (shard_values >= partition.bound_low).all()
            if partition.bound_high is not None:
                assert (shard_values < partition.bound_high).all()
        # Access metadata survived the migration (modulo the new reads).
        access_after = sum(
            int(p.db.table.access_counts().sum()) for p in store.partitions
        )
        assert access_after >= access_before

    def test_max_partitions_caps_growth(self):
        # Two shards: a split cannot be funded by a merge (every
        # adjacent pair touches the hot shard), so the count grows —
        # until the cap forbids it.
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 400,
            policy_factory=FifoAmnesia, seed=3, rebalance="adaptive",
            split_threshold=1.2, max_partitions=3,
        )
        store.insert({"a": np.arange(0, 1000, 2)})
        for _ in range(10):
            store.range_query(0, 400)
        store.rebalance(floor=10)
        assert store.partition_count == 3
        for _ in range(10):
            store.range_query(0, 200)
        store.rebalance(floor=10)
        assert store.partition_count == 3  # capped

    def test_uniform_traffic_never_splits(self):
        store = self._skewed_store()
        for _ in range(10):
            store.range_query(0, 1000)  # covers every shard evenly
        store.rebalance(floor=10)
        assert store.boundaries == (0, 250, 500, 750, 1000)
        assert store.adaptations == ()

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            self._skewed_store(split_threshold=0.5)
        with pytest.raises(ConfigError):
            self._skewed_store(max_partitions=2)  # below initial count


class TestPlanReportOrdering:
    """Satellite fix: shard reports are ordered by bound, explicitly."""

    def test_report_order_is_by_bound_not_list_order(self):
        store = make_store(boundaries=(0, 250, 500, 1000))
        store.insert({"a": np.arange(0, 1000, 10)})
        store.range_query(0, 100)
        # Simulate an interleaving-dependent internal order.
        store._partitions.reverse()
        report = store.plan_report()
        lows = [
            int(line.split("[")[1].split(",")[0])
            for line in report.splitlines()
            if line.startswith("shard ")
        ]
        assert lows == sorted(lows) == [0, 250, 500]
        stats = store.stats()
        assert stats["budgets"] == [
            p.budget for p in sorted(store.partitions, key=lambda p: p.low)
        ]
        store._partitions.reverse()  # restore

    def test_report_mentions_workers_and_adaptations(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 250, 500, 1000), 300,
            policy_factory=FifoAmnesia, seed=5, workers=4,
            rebalance="adaptive", split_threshold=1.5,
        )
        store.insert({"a": np.arange(1000)})
        for _ in range(10):
            store.range_query(0, 200)
        store.rebalance(floor=10)
        report = store.plan_report()
        assert "workers 4" in report
        assert "rebalance 'adaptive'" in report
        assert "boundary adaptations:" in report
        assert "split shard" in report
        store.close()

    def test_report_stable_after_adaptation(self):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 250, 500, 1000), 300,
            policy_factory=FifoAmnesia, seed=5,
            rebalance="adaptive", split_threshold=1.5,
        )
        store.insert({"a": np.arange(1000)})
        for _ in range(10):
            store.range_query(0, 200)
        store.rebalance(floor=10)
        report = store.plan_report()
        headers = [
            line for line in report.splitlines() if line.startswith("shard ")
        ]
        bounds = [
            (p.low, p.high)
            for p in sorted(store.partitions, key=lambda p: p.low)
        ]
        assert headers == [
            f"shard {i} [{lo}, {hi}):" for i, (lo, hi) in enumerate(bounds)
        ]


class TestIngestFailureSemantics:
    """EpochGate failure contract: an applier dying mid-writing() must
    not leak the exclusive side, starve readers, or publish a torn
    epoch — and a retried flush must converge to the uninterrupted
    run's exact state."""

    def test_crash_mid_apply_rolls_back_and_releases_gate(self):
        from repro import faults

        store = make_store()
        store.enqueue({"a": np.arange(100)})
        store.enqueue({"a": np.arange(100) + 450})
        with faults.armed("ingest.apply:crash@1"):
            with pytest.raises(faults.FaultInjected):
                store.flush()
        # No torn epoch: nothing fully applied, nothing published.
        assert store.ingest_epoch == 0
        assert store.pending_batches == 2
        # The exclusive side is released: a reader proceeds immediately
        # and a retried flush completes the wave.
        store.range_query(0, 1000)
        assert store.flush() == 2
        assert store.pending_batches == 0
        assert store.active_count == 100  # budget-limited, all applied

    def test_partial_wave_publishes_only_complete_batches(self):
        from repro import faults

        store = make_store(total_budget=1000)
        store.enqueue({"a": np.full(10, 100)})   # batch 0 -> shard 0 only
        store.enqueue({"a": np.full(10, 700)})   # batch 1 -> shard 1 only
        # workers=1 drains shard 0 fully (batch 0 chunk) then crashes on
        # shard 1's first chunk: batch 0 is complete, batch 1 is not.
        with faults.armed("ingest.apply:crash@2"):
            with pytest.raises(faults.FaultInjected):
                store.flush()
        assert store.ingest_epoch == 1
        assert store.pending_batches == 1
        assert store.flush() == 2

    def test_failed_wave_preserves_fifo_order_for_retry(self):
        from repro import faults

        store = make_store(total_budget=1000)
        batches = [np.arange(20) + 30 * i for i in range(4)]
        for batch in batches:
            store.enqueue({"a": batch})
        with faults.armed("ingest.apply:crash@3"):
            with pytest.raises(faults.FaultInjected):
                store.flush()
        store.flush()

        mirror = make_store(total_budget=1000)
        for batch in batches:
            mirror.insert({"a": batch})
        for crashed, clean in zip(store.partitions, mirror.partitions):
            assert np.array_equal(
                crashed.db.table.values("a"), clean.db.table.values("a")
            )
            assert np.array_equal(
                crashed.db.table.insert_epochs(),
                clean.db.table.insert_epochs(),
            )

    def test_readers_see_old_epochs_full_view_during_failed_flush(self):
        """Barrier-started reader threads must observe the pre-flush
        epoch's complete answer after a crashed apply wave — the gate
        handed them either the old or the (never-published) new state,
        not a mixture, and nobody deadlocks."""
        import threading

        from repro import faults

        store = make_store(total_budget=1000)
        store.insert({"a": np.arange(0, 1000, 10)})  # epoch 1: 100 rows
        store.enqueue({"a": np.arange(5) + 100})
        store.enqueue({"a": np.arange(5) + 600})
        n_readers = 4
        barrier = threading.Barrier(n_readers + 1)
        results, errors = [], []

        def reader():
            barrier.wait()
            try:
                result = store.range_query(0, 1000)
                results.append(result.rf + result.mf)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=reader) for _ in range(n_readers)
        ]
        for t in threads:
            t.start()
        with faults.armed("ingest.apply:crash@1"):
            barrier.wait()
            with pytest.raises(faults.FaultInjected):
                store.flush()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads), "reader starved"
        assert not errors
        # Epoch never advanced, so every reader saw the 100-row view.
        assert results == [100] * n_readers
        assert store.ingest_epoch == 1

    @pytest.mark.parametrize("workers", [1, 4])
    def test_crashed_then_retried_flush_is_bit_identical(self, workers):
        from repro import faults

        def build():
            return PartitionedAmnesiaDatabase(
                "a",
                (0, 250, 500, 750, 1000),
                200,
                policy_factory=FifoAmnesia,
                seed=7,
                workers=workers,
            )

        crashed = build()
        for i in range(5):
            crashed.enqueue({"a": (np.arange(40) * 23 + i * 7) % 1000})
        with faults.armed("ingest.apply:crash@4"):
            try:
                crashed.flush()
            except faults.FaultInjected:
                pass
        crashed.flush()

        clean = build()
        for i in range(5):
            clean.enqueue({"a": (np.arange(40) * 23 + i * 7) % 1000})
        clean.flush()

        assert crashed.ingest_epoch == clean.ingest_epoch
        for a, b in zip(crashed.partitions, clean.partitions):
            assert np.array_equal(
                a.db.table.values("a"), b.db.table.values("a")
            )
            assert np.array_equal(
                a.db.table.active_mask(), b.db.table.active_mask()
            )

    def test_crash_before_publish_still_publishes_applied_wave(self):
        """ingest.applied fires after every applier succeeded; the
        publish lives on the unwind path, so the wave is not lost."""
        from repro import faults

        store = make_store()
        store.enqueue({"a": np.arange(100)})
        with faults.armed("ingest.applied:crash"):
            with pytest.raises(faults.FaultInjected):
                store.flush()
        assert store.ingest_epoch == 1
        assert store.pending_batches == 0
        assert store.range_query(0, 1000).oracle_count == 100

    def test_crash_at_enqueue_drops_batch_atomically(self):
        from repro import faults

        store = make_store()
        with faults.armed("ingest.enqueue:crash"):
            with pytest.raises(faults.FaultInjected):
                store.enqueue({"a": np.arange(10)})
        assert store.pending_batches == 0
        assert all(not p.pending for p in store.partitions)
        store.enqueue({"a": np.arange(10)})  # the writer's retry
        assert store.flush() == 1

    def test_crash_at_rebalance_adapt_leaves_layout_intact(self):
        from repro import faults

        store = make_store()
        store.enqueue({"a": np.arange(100)})
        before_bounds = list(store.stats()["boundaries"])
        before_budgets = [p.budget for p in store.partitions]
        with faults.armed("rebalance.adapt:crash"):
            with pytest.raises(faults.FaultInjected):
                store.rebalance(policy="adaptive")
        # Backlog drained and published; layout untouched.
        assert store.ingest_epoch == 1
        assert store.pending_batches == 0
        assert list(store.stats()["boundaries"]) == before_bounds
        assert [p.budget for p in store.partitions] == before_budgets
        store.rebalance(policy="adaptive")  # the retry is a full one

    def test_map_ordered_waits_for_all_groups_before_raising(self):
        """The fan-out barrier: a failing group must not leave other
        groups running when map_ordered raises."""
        import threading
        import time

        from repro._util.parallel import FanOutPool

        pool = FanOutPool()
        done = []

        def work(item):
            if item == 0:
                raise ValueError("group zero dies")
            time.sleep(0.05)
            done.append(item)

        try:
            with pytest.raises(ValueError, match="group zero"):
                pool.map_ordered(work, list(range(4)), workers=4)
            # Every surviving group finished before the raise.
            assert sorted(done) == [1, 2, 3]
        finally:
            pool.close()
