"""Property-test equivalence harness for the query planner.

The proof that the planned query engine is safe: for randomized
insert/forget/query interleavings, across every amnesia policy and
every plan mode, the planner must return results *bit-identical* to
the naive full-history scan — same ``rf``, ``mf``, precision, match
positions, and float aggregate values — and must bump exactly the same
access-frequency counters, so policy-visible state evolves identically
regardless of the access path.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AmnesiaDatabase, AmnesiaSimulator, SimulationConfig
from repro import faults
from repro._util.errors import TransientFault
from repro.amnesia.registry import POLICY_NAMES, make_policy
from repro.faults import FaultInjected
from repro.serving import QueryService
from repro.datagen import UniformDistribution
from repro.indexes import BlockRangeIndex, HashIndex, SortedIndex
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import (
    AggregateFunction,
    AggregateQuery,
    AndPredicate,
    QueryExecutor,
    QueryPlanner,
    RangePredicate,
    RangeQuery,
)
from repro.query.plans import build_plan, parse_query_spec
from repro.stats import ExactMoments
from repro.storage import (
    Catalog,
    CohortZoneMap,
    CompressedCohortStore,
    Table,
    recover_store,
)

#: Plan variants compared against the naive scan.
PLAN_VARIANTS = ("zonemap", "auto", "index", "cost")


def _all_mode_executors(table):
    """One read-only executor per access path over the same table."""
    zone_map = CohortZoneMap(table)
    sorted_idx = SortedIndex(table, "a", merge_threshold=16)
    hash_idx = HashIndex(table, "a")
    brin_idx = BlockRangeIndex(table, "a", block_size=8)
    planners = {
        "scan": QueryPlanner(table, mode="scan"),
        "zonemap": QueryPlanner(table, mode="zonemap", zone_map=zone_map),
        "auto": QueryPlanner(
            table,
            mode="auto",
            zone_map=zone_map,
            indexes=[sorted_idx, hash_idx, brin_idx],
        ),
        "index-sorted": QueryPlanner(table, mode="index", indexes=[sorted_idx]),
        "index-hash": QueryPlanner(
            table, mode="index", zone_map=zone_map, indexes=[hash_idx]
        ),
        "index-brin": QueryPlanner(
            table, mode="index", zone_map=zone_map, indexes=[brin_idx]
        ),
        "cost": QueryPlanner(
            table,
            mode="cost",
            zone_map=zone_map,
            indexes=[sorted_idx, hash_idx, brin_idx],
        ),
        "cost-bare": QueryPlanner(table, mode="cost"),
    }
    return {
        name: QueryExecutor(table, record_access=False, planner=planner)
        for name, planner in planners.items()
    }


def _range_fingerprint(result):
    return (
        result.rf,
        result.mf,
        result.precision,
        result.active_positions.tolist(),
        result.missed_positions.tolist(),
    )


def _aggregate_fingerprint(result):
    return (
        result.amnesiac_value,
        result.oracle_value,
        result.active_matches,
        result.oracle_matches,
    )


@st.composite
def interleavings(draw):
    """A random insert/forget schedule plus a query set to replay."""
    steps = draw(
        st.lists(
            st.tuples(
                st.lists(st.integers(0, 120), min_size=1, max_size=25),
                st.integers(0, 2**16),
                st.floats(0.0, 0.6),
            ),
            min_size=1,
            max_size=4,
        )
    )
    queries = draw(
        st.lists(
            st.tuples(st.integers(-5, 125), st.integers(0, 40)),
            min_size=1,
            max_size=5,
        )
    )
    function = draw(st.sampled_from(list(AggregateFunction)))
    return steps, queries, function


@given(interleavings())
@settings(max_examples=40, deadline=None)
def test_all_plan_modes_answer_identically(workload):
    """The archetype headline: every access path == the naive scan."""
    steps, queries, function = workload
    table = Table("t", ["a"])
    executors = _all_mode_executors(table)
    for epoch, (values, forget_seed, forget_fraction) in enumerate(steps):
        table.insert_batch(epoch, {"a": values})
        forget_rng = np.random.default_rng(forget_seed)
        victims = np.flatnonzero(
            forget_rng.random(table.total_rows) < forget_fraction
        )
        table.forget(victims, epoch=epoch)
        # Interleave: replay every query after every mutation step.
        for low, width in queries:
            query = RangeQuery(RangePredicate("a", low, low + width))
            baseline = _range_fingerprint(
                executors["scan"].execute_range(query, epoch)
            )
            for name, executor in executors.items():
                got = _range_fingerprint(executor.execute_range(query, epoch))
                assert got == baseline, f"{name} diverged on {query}"
            windowed = AggregateQuery(
                function, "a", RangePredicate("a", low, low + width)
            )
            whole = AggregateQuery(function, "a")
            for agg_query in (windowed, whole):
                baseline = _aggregate_fingerprint(
                    executors["scan"].execute_aggregate(agg_query, epoch)
                )
                for name, executor in executors.items():
                    got = _aggregate_fingerprint(
                        executor.execute_aggregate(agg_query, epoch)
                    )
                    assert got == baseline, f"{name} diverged on {agg_query}"


def _make_policy(name):
    kwargs = {"column": "a"} if name in ("pair", "dist", "stratified") else {}
    return make_policy(name, **kwargs)


def _run_facade_scenario(
    policy_name: str,
    plan: str,
    stats: str = "uniform",
    compress: str = "off",
):
    """Drive an AmnesiaDatabase end to end; return every observable."""
    db = AmnesiaDatabase(
        budget=60,
        policy=_make_policy(policy_name),
        seed=11,
        plan=plan,
        stats=stats,
        compress=compress,
    )
    if plan in ("index", "cost"):
        db.create_index("a", kind="sorted", merge_threshold=32)
    rng = np.random.default_rng(5)
    observed = []
    for _ in range(6):
        db.insert({"a": rng.integers(0, 500, 25)})
        for low in (0, 100, 250, 400):
            result = db.range_query("a", low, low + 30)
            observed.append(_range_fingerprint(result))
        aggregate = db.aggregate("avg", "a", 50, 300)
        observed.append(_aggregate_fingerprint(aggregate))
    observed.append(db.table.active_mask().tolist())
    observed.append(db.table.access_counts().tolist())
    observed.append(db.table.last_access_epochs().tolist())
    observed.append(db.table.forgotten_epochs().tolist())
    if compress == "on" and plan != "scan":
        # Vacuity guard: a compressed run must actually have answered
        # from compressed blocks, or the equivalence proves nothing.
        assert db.compressed is not None and db.compressed.demoted_count > 0
    return observed


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_every_policy_evolves_identically_under_every_plan(policy_name, plan):
    """Full closed loop: queries feed access counts feed the policy.

    If any plan mode returned even one different tuple, the policy's
    victim selection would cascade and the final table state would
    diverge — so equality here proves both result and accounting
    equivalence across all amnesia policies.
    """
    assert _run_facade_scenario(policy_name, "scan") == _run_facade_scenario(
        policy_name, plan
    )


@pytest.mark.parametrize("plan", ("scan",) + PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_histogram_statistics_are_estimate_only(policy_name, plan):
    """``--stats hist`` sharpens estimates and *nothing else*: every
    observable of a histogram-statistics run — under every plan mode,
    including the scan baseline itself — equals the uniform-statistics
    scan baseline bit for bit."""
    assert _run_facade_scenario(
        policy_name, plan, stats="hist"
    ) == _run_facade_scenario(policy_name, "scan", stats="uniform")


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_compressed_execution_identical_across_policies_and_plans(
    policy_name, plan
):
    """Compressed execution is invisible to results (PR 9 tentpole).

    ``--compress on`` demotes cold cohorts into best-codec blocks and
    answers range probes directly on the encoded form; every observable
    — results, precision, access accounting, final table state — must
    equal the uncompressed trust-nothing scan baseline bit for bit.
    The scenario runner asserts cohorts were actually demoted, so the
    equality is never vacuous.
    """
    assert _run_facade_scenario(
        policy_name, plan, compress="on"
    ) == _run_facade_scenario(policy_name, "scan", compress="off")


@pytest.mark.parametrize("plan", ("scan",) + PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_compressed_with_histogram_statistics(policy_name, plan):
    """Compression and histogram statistics compose: both on together
    still equals the uniform-statistics uncompressed scan baseline."""
    assert _run_facade_scenario(
        policy_name, plan, stats="hist", compress="on"
    ) == _run_facade_scenario(
        policy_name, "scan", stats="uniform", compress="off"
    )


def test_scan_mode_never_builds_a_compressed_store():
    """The trust-nothing baseline reads raw columns only: under
    ``plan="scan"`` no store is built even with ``compress="on"``
    (mirroring the zone-map and statistics rules)."""
    from repro.amnesia import FifoAmnesia

    db = AmnesiaDatabase(
        budget=50, policy=FifoAmnesia(), plan="scan", compress="on"
    )
    assert db.compressed is None
    db_on = AmnesiaDatabase(
        budget=50, policy=FifoAmnesia(), plan="cost", compress="on"
    )
    assert db_on.compressed is not None


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
def test_compressed_and_path_matches_scan(plan):
    """Multi-column AND predicates route through per-column compressed
    range masks; the conjunction must match the scan baseline."""
    table = Table("t", ["a", "b"])
    rng = np.random.default_rng(7)
    for epoch in range(5):
        table.insert_batch(
            epoch,
            {
                "a": rng.integers(0, 200, 40),
                "b": rng.integers(0, 50, 40),
            },
        )
    table.forget(np.arange(0, 200, 3), epoch=5)
    compressed = CompressedCohortStore(table)
    compressed.demote_cold(current_epoch=6)
    assert compressed.demoted_count > 0
    zone_map = CohortZoneMap(table)
    indexes = [SortedIndex(table, "a", merge_threshold=16)]
    scan = QueryExecutor(
        table, record_access=False, planner=QueryPlanner(table, mode="scan")
    )
    pruned = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table,
            mode=plan,
            zone_map=zone_map,
            indexes=indexes,
            compressed=compressed,
        ),
    )
    probes = [
        ((0, 100), (0, 25)),
        ((50, 150), (10, 40)),
        ((150, 400), (0, 10)),     # partially out of domain on a
        ((-50, 20), (45, 100)),    # straddles both domain edges
        ((300, 400), (60, 80)),    # fully out of domain
    ]
    for (a_low, a_high), (b_low, b_high) in probes:
        query = RangeQuery(
            AndPredicate(
                RangePredicate("a", a_low, a_high),
                RangePredicate("b", b_low, b_high),
            )
        )
        baseline = _range_fingerprint(scan.execute_range(query, 7))
        assert _range_fingerprint(pruned.execute_range(query, 7)) == baseline


@given(interleavings())
@settings(max_examples=25, deadline=None)
def test_compressed_paths_answer_identically(workload):
    """Hypothesis sweep: with cohorts demoted after every mutation
    step, every compressed access path == the naive scan."""
    steps, queries, function = workload
    table = Table("t", ["a"])
    compressed = CompressedCohortStore(table, min_age=1)
    zone_map = CohortZoneMap(table)
    sorted_idx = SortedIndex(table, "a", merge_threshold=16)
    planners = {
        "scan": QueryPlanner(table, mode="scan"),
        "zonemap": QueryPlanner(
            table, mode="zonemap", zone_map=zone_map, compressed=compressed
        ),
        "auto": QueryPlanner(
            table,
            mode="auto",
            zone_map=zone_map,
            indexes=[sorted_idx],
            compressed=compressed,
        ),
        "index": QueryPlanner(
            table,
            mode="index",
            zone_map=zone_map,
            indexes=[sorted_idx],
            compressed=compressed,
        ),
        "cost": QueryPlanner(
            table,
            mode="cost",
            zone_map=zone_map,
            indexes=[sorted_idx],
            compressed=compressed,
        ),
    }
    executors = {
        name: QueryExecutor(table, record_access=False, planner=planner)
        for name, planner in planners.items()
    }
    for epoch, (values, forget_seed, forget_fraction) in enumerate(steps):
        table.insert_batch(epoch, {"a": values})
        forget_rng = np.random.default_rng(forget_seed)
        victims = np.flatnonzero(
            forget_rng.random(table.total_rows) < forget_fraction
        )
        table.forget(victims, epoch=epoch)
        compressed.demote_cold(epoch)
        for low, width in queries:
            query = RangeQuery(RangePredicate("a", low, low + width))
            baseline = _range_fingerprint(
                executors["scan"].execute_range(query, epoch)
            )
            for name, executor in executors.items():
                got = _range_fingerprint(executor.execute_range(query, epoch))
                assert got == baseline, f"{name} diverged on {query}"
            windowed = AggregateQuery(
                function, "a", RangePredicate("a", low, low + width)
            )
            baseline = _aggregate_fingerprint(
                executors["scan"].execute_aggregate(windowed, epoch)
            )
            for name, executor in executors.items():
                got = _aggregate_fingerprint(
                    executor.execute_aggregate(windowed, epoch)
                )
                assert got == baseline, f"{name} diverged on {windowed}"


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
def test_access_accounting_identical_under_pruned_execution(plan):
    """record_access=True bumps identical counters whatever the path."""

    def build():
        table = Table("t", ["a"])
        for epoch in range(4):
            table.insert_batch(
                epoch, {"a": np.arange(epoch * 50, epoch * 50 + 30)}
            )
        table.forget(np.arange(0, 120, 4), epoch=4)
        return table

    scanned = build()
    pruned = build()
    zone_map = CohortZoneMap(pruned)
    indexes = [SortedIndex(pruned, "a", merge_threshold=16)]
    executors = {
        "scan": QueryExecutor(scanned, record_access=True),
        plan: QueryExecutor(
            pruned,
            record_access=True,
            planner=QueryPlanner(
                pruned, mode=plan, zone_map=zone_map, indexes=indexes
            ),
        ),
    }
    for epoch in range(5, 9):
        for low in (0, 25, 60, 110, 145):
            query = RangeQuery(RangePredicate("a", low, low + 20))
            for executor in executors.values():
                executor.execute_range(query, epoch)
        whole = AggregateQuery(AggregateFunction.SUM, "a")
        for executor in executors.values():
            executor.execute_aggregate(whole, epoch)
    assert (
        scanned.access_counts().tolist() == pruned.access_counts().tolist()
    )
    assert (
        scanned.last_access_epochs().tolist()
        == pruned.last_access_epochs().tolist()
    )


def _run_partitioned_scenario(
    policy_name: str,
    plan: str,
    workers: int = 1,
    rebalance: str = "hits",
    stats: str = "uniform",
    compress: str = "off",
):
    """Drive a sharded store end to end; return every observable.

    Out-of-domain values and ranges are included on purpose: the edge
    shards' open-ended bounds must answer them identically under every
    plan mode.  The query mix is skewed toward the low shard, so under
    ``rebalance="adaptive"`` (with the tightened split threshold) the
    run includes mid-run boundary splits and merges — whose decisions,
    and the migrated table state behind them, must also be identical
    under every plan mode and worker count.
    """
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, 250, 500, 1000),
        total_budget=120,
        policy_factory=lambda: _make_policy(policy_name),
        seed=9,
        plan=plan,
        workers=workers,
        rebalance=rebalance,
        split_threshold=1.5,
        stats=stats,
        compress=compress,
    )
    rng = np.random.default_rng(3)
    observed = []
    for _ in range(5):
        store.insert({"a": rng.integers(-100, 1100, 60)})
        for low, width in (
            (-150, 120), (0, 300), (0, 150), (10, 80),
            (400, 300), (900, 400), (1050, 100),
        ):
            result = store.range_query(low, low + width)
            observed.append((result.rf, result.mf, result.precision))
        for function in AggregateFunction:
            observed.append(store.aggregate(function))
            observed.append(store.aggregate(function, 100, 800))
        # Rebalancing feeds on query-traffic counters; budgets,
        # boundaries and the forgetting they trigger must not depend
        # on the plan mode or the fan-out width.
        observed.append(store.rebalance(floor=5))
        observed.append(store.boundaries)
    observed.append(store.adaptations)
    for partition in store.partitions:
        observed.append(partition.db.table.active_mask().tolist())
        observed.append(partition.db.table.access_counts().tolist())
        observed.append(partition.db.table.last_access_epochs().tolist())
    if compress == "on" and plan != "scan":
        # Vacuity guard: at least one shard must hold demoted cohorts.
        assert (
            sum(
                p.db.compressed.demoted_count
                for p in store.partitions
                if p.db.compressed is not None
            )
            > 0
        )
    store.close()
    return observed


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_partitioned_store_identical_across_plans(policy_name, plan):
    """The sharded path is planner-routed yet bit-identical to scan —
    including shard pruning, moment-merged aggregates and VAR/STD."""
    assert _run_partitioned_scenario(policy_name, "scan") == (
        _run_partitioned_scenario(policy_name, plan)
    )


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_parallel_fanout_identical_to_sequential_scan(policy_name, plan):
    """The concurrency headline: ``workers=4`` fan-out under adaptive
    rebalancing — including mid-run boundary splits/merges — returns
    every observable bit-identical to the sequential scan baseline."""
    baseline = _run_partitioned_scenario(
        policy_name, "scan", workers=1, rebalance="adaptive"
    )
    got = _run_partitioned_scenario(
        policy_name, plan, workers=4, rebalance="adaptive"
    )
    assert got == baseline
    # The scenario is skewed on purpose; prove the trajectory really
    # contained boundary adaptations (they are part of the baseline,
    # so equality above already pinned them — this guards the setup).
    (adaptations,) = [
        o
        for o in baseline
        if isinstance(o, tuple) and all(isinstance(e, str) for e in o)
    ]
    assert any("split shard" in event for event in adaptations)
    assert any("merged shards" in event for event in adaptations)


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_compressed_partitioned_identical_across_workers(
    policy_name, plan, workers
):
    """Compressed execution inside every shard, at fan-out widths 1 and
    4 — including mid-run shard spawns that adopt migrated history —
    matches the sequential uncompressed scan baseline bit for bit."""
    baseline = _run_partitioned_scenario(policy_name, "scan", compress="off")
    got = _run_partitioned_scenario(
        policy_name, plan, workers=workers, compress="on"
    )
    assert got == baseline


@pytest.mark.parametrize("rebalance", ("hits", "rows"))
@pytest.mark.parametrize("workers", (1, 4))
def test_fanout_identical_across_rebalance_trajectories(workers, rebalance):
    """Budget-only rebalancing trajectories are width- and
    plan-independent too (adaptive is covered above)."""
    baseline = _run_partitioned_scenario(
        "fifo", "scan", workers=1, rebalance=rebalance
    )
    assert _run_partitioned_scenario(
        "fifo", "cost", workers=workers, rebalance=rebalance
    ) == baseline


_MEDIAN_BASELINES: dict = {}


def _median_baseline(policy_name: str):
    if policy_name not in _MEDIAN_BASELINES:
        _MEDIAN_BASELINES[policy_name] = _run_partitioned_scenario(
            policy_name, "scan", workers=1, rebalance="adaptive", stats="hist"
        )
    return _MEDIAN_BASELINES[policy_name]


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot"))
def test_median_split_trajectories_identical(policy_name, plan, workers):
    """Histogram-median boundary cuts (``stats="hist"`` + adaptive
    rebalancing) are driven only by plan-independent table state and
    access counters, so the whole trajectory — cut points, migrated
    shard state, every downstream forgetting decision — is
    bit-identical to the sequential scan baseline under every plan
    mode and fan-out width."""
    baseline = _median_baseline(policy_name)
    got = _run_partitioned_scenario(
        policy_name, plan, workers=workers, rebalance="adaptive", stats="hist"
    )
    assert got == baseline
    (adaptations,) = [
        o
        for o in baseline
        if isinstance(o, tuple) and all(isinstance(e, str) for e in o)
    ]
    assert any("at median" in event for event in adaptations)
    # Median cuts genuinely diverge from the midpoint trajectory —
    # the statistics mode is a real knob, not a relabeling.
    midpoint = _run_partitioned_scenario(
        policy_name, "scan", workers=1, rebalance="adaptive", stats="uniform"
    )
    assert got != midpoint


def _run_catalog_scenario(plan: str):
    """Drive a two-table catalog end to end; return every observable."""
    catalog = Catalog(plan=plan)
    tables = {name: catalog.create_table(name, ["a"]) for name in ("s1", "s2")}
    if plan in ("index", "cost"):
        catalog.create_index("s1", "a", SortedIndex, merge_threshold=16)
    rng = np.random.default_rng(7)
    observed = []
    for epoch in range(4):
        for table in tables.values():
            table.insert_batch(epoch, {"a": rng.integers(0, 400, 30)})
            victims = np.flatnonzero(rng.random(table.total_rows) < 0.2)
            table.forget(victims, epoch=epoch)
        for name in tables:
            for low in (0, 100, 300):
                result = catalog.execute(
                    name,
                    RangeQuery(RangePredicate("a", low, low + 80)),
                    epoch,
                )
                observed.append(_range_fingerprint(result))
            aggregate = catalog.execute(
                name,
                AggregateQuery(
                    AggregateFunction.AVG, "a", RangePredicate("a", 50, 350)
                ),
                epoch,
            )
            observed.append(_aggregate_fingerprint(aggregate))
    for table in tables.values():
        observed.append(table.access_counts().tolist())
        observed.append(table.last_access_epochs().tolist())
    return observed


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
def test_catalog_execution_identical_across_plans(plan):
    """Multi-table catalog runs answer identically under every mode."""
    assert _run_catalog_scenario("scan") == _run_catalog_scenario(plan)


# -- cross-table plans (union/join over the catalog) -----------------------


def _oracle_table_rows(table, low=None, high=None):
    """Naive full-scan stream of one table: (rows, forgotten flags).

    Rows are ``[value, insert_epoch]`` in insertion-position order —
    the ground truth every :class:`~repro.query.plans.TableScanNode`
    must reproduce bit-identically.
    """
    values = table.values("a")
    if low is None:
        mask = np.ones(values.size, dtype=bool)
    else:
        mask = (values >= low) & (values < high)
    positions = np.flatnonzero(mask)
    rows = np.column_stack(
        [values[positions], table.insert_epochs()[positions]]
    )
    return rows.tolist(), (~table.active_mask()[positions]).tolist()


def _oracle_sharded_rows(store, low=None, high=None):
    """Per-shard naive streams concatenated in shard order."""
    rows: list = []
    forgotten: list = []
    for partition in store.partitions:
        shard_rows, shard_forgotten = _oracle_table_rows(
            partition.db.table, low, high
        )
        rows.extend(shard_rows)
        forgotten.extend(shard_forgotten)
    return rows, forgotten


def _nested_loop_join(left, right, key):
    """The oracle join: left-then-right nested loop, O(n*m) on purpose.

    Emits pairs in ascending (left row, right row) order — the
    canonical order the hash join must match — and flags an output
    row forgotten iff either contributing input row was.
    """
    key_index = {"value": 0, "epoch": 1}[key]
    lrows, lforgotten = left
    rrows, rforgotten = right
    rows: list = []
    forgotten: list = []
    for i, lrow in enumerate(lrows):
        for j, rrow in enumerate(rrows):
            if lrow[key_index] == rrow[key_index]:
                rows.append(list(lrow) + list(rrow))
                forgotten.append(bool(lforgotten[i] or rforgotten[j]))
    return rows, forgotten


def _oracle_for_spec(catalog, store, spec):
    """Evaluate a union/join spec with naive scans + nested loops."""
    from repro.query.plans import parse_query_spec

    parsed = parse_query_spec(spec)
    streams = []
    for name in parsed.tables:
        if catalog.has_sharded(name):
            streams.append(_oracle_sharded_rows(store, parsed.low, parsed.high))
        else:
            streams.append(
                _oracle_table_rows(catalog.get(name), parsed.low, parsed.high)
            )
    if parsed.kind == "union":
        rows: list = []
        forgotten: list = []
        for stream_rows, stream_forgotten in streams:
            rows.extend(stream_rows)
            forgotten.extend(stream_forgotten)
        return rows, forgotten
    return _nested_loop_join(streams[0], streams[1], parsed.on)


#: The spec mix: unions and joins, bounded and not, value- and
#: epoch-keyed, plain and sharded inputs.
CROSS_SPECS = (
    "union:s1,s2,s3",
    "union:s1,s2:low=50,high=300",
    "join:s1,s2:on=value",
    "join:s1,s2:on=value,block=7",  # blocked probe: execution-only knob
    "join:s1,s3:on=value,low=0,high=150",
    "join:s2,s3:on=epoch",
)


def _run_cross_table_scenario(
    policy_name: str, plan: str, workers: int = 1, stats: str = "uniform"
):
    """Drive unions/joins over two tables + one sharded store.

    Every query is checked against the nested-loop oracle *inline* (so
    the oracle property holds under every plan mode and width, not
    just the baseline), and the returned observables — result streams,
    per-input accounting, final table state including access counters
    — let callers prove cross-mode/cross-width bit-equality.
    """
    catalog = Catalog(plan=plan, workers=workers, stats=stats)
    dbs = {}
    for i, name in enumerate(("s1", "s2")):
        dbs[name] = AmnesiaDatabase(
            budget=50,
            policy=_make_policy(policy_name),
            seed=13 + i,
            table_name=name,
            stats=stats,
        )
        catalog.register(dbs[name].table)
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, 200, 400),
        total_budget=60,
        policy_factory=lambda: _make_policy(policy_name),
        seed=21,
        plan=plan,
        workers=workers,
        stats=stats,
    )
    catalog.register_sharded("s3", store)
    if plan in ("index", "cost"):
        catalog.create_index("s1", "a", SortedIndex, merge_threshold=16)
    rng = np.random.default_rng(17)
    observed = []
    for batch in range(1, 5):
        for db in dbs.values():
            db.insert({"a": rng.integers(0, 400, 30)})
        store.insert({"a": rng.integers(0, 400, 30)})
        for spec in CROSS_SPECS:
            expected = _oracle_for_spec(catalog, store, spec)
            result = catalog.query(spec, epoch=batch)
            got = (result.rows.tolist(), result.forgotten.tolist())
            assert got == expected, (
                f"{spec} diverged from the nested-loop oracle under "
                f"plan={plan} workers={workers}"
            )
            observed.append(
                list(got)
                + [
                    result.rf,
                    result.mf,
                    result.precision,
                    [(r.rf, r.mf, r.precision) for r in result.inputs],
                ]
            )
            # Streamed paths must be bit-identical to the same oracle:
            # (a) the batch iterator's concatenation reproduces the
            # materialized rows and flags exactly, and (b) the streamed
            # aggregate equals ExactMoments over the oracle's canonical
            # rows — across every policy, plan mode, stats source and
            # width this scenario is driven at.  record_access=False
            # keeps the extra reads out of the policy-visible state the
            # baseline comparison fingerprints.
            pieces = list(
                build_plan(catalog, spec).batches(
                    catalog, batch, batch_size=7, record_access=False
                )
            )
            streamed = (
                (
                    np.concatenate([r for r, _ in pieces]).tolist(),
                    np.concatenate([f for _, f in pieces]).tolist(),
                )
                if pieces
                else ([], [])
            )
            assert streamed == expected, (
                f"{spec} batch stream diverged from the oracle under "
                f"plan={plan} workers={workers}"
            )
            assert all(r.shape[0] == 7 for r, _ in pieces[:-1])
            agg_spec = dataclasses.replace(
                parse_query_spec(spec), agg="value"
            ).render()
            agg = catalog.query(
                agg_spec, epoch=batch, record_access=False, batch_size=5
            )
            exp_rows = (
                np.asarray(expected[0], dtype=np.int64)
                if expected[0]
                else np.empty((0, 2), dtype=np.int64)
            )
            exp_flags = np.asarray(expected[1], dtype=bool)
            assert agg.active == ExactMoments.of(exp_rows[~exp_flags, 0])
            assert agg.missed == ExactMoments.of(exp_rows[exp_flags, 0])
            assert (agg.rf, agg.mf) == (result.rf, result.mf)
            observed.append(
                [
                    agg.rf,
                    agg.mf,
                    agg.precision,
                    agg.active.total,
                    agg.missed.total,
                    [(r.rf, r.mf, r.precision) for r in agg.inputs],
                ]
            )
    for db in dbs.values():
        observed.append(db.table.active_mask().tolist())
        observed.append(db.table.access_counts().tolist())
        observed.append(db.table.last_access_epochs().tolist())
    for partition in store.partitions:
        observed.append(partition.db.table.active_mask().tolist())
        observed.append(partition.db.table.access_counts().tolist())
        observed.append((partition.query_hits, partition.query_rows))
    store.close()
    catalog.close()
    return observed


_CROSS_BASELINES: dict = {}


def _cross_baseline(policy_name: str):
    if policy_name not in _CROSS_BASELINES:
        _CROSS_BASELINES[policy_name] = _run_cross_table_scenario(
            policy_name, "scan", workers=1
        )
    return _CROSS_BASELINES[policy_name]


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_cross_table_plans_identical_across_modes(policy_name, plan):
    """Union/join results — streams, per-input RF/MF, access accounting
    and the forgetting downstream of it — are bit-identical to the
    scan baseline under every plan mode (oracle checked inline)."""
    assert _run_cross_table_scenario(policy_name, plan) == _cross_baseline(
        policy_name
    )


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("plan", ("auto", "cost"))
@pytest.mark.parametrize("policy_name", ("fifo", "rot"))
def test_cross_table_fanout_identical_to_sequential(policy_name, plan, workers):
    """Leaf fan-out (including the sharded input's own shard fan-out)
    returns every observable bit-identical to sequential scan."""
    assert _run_cross_table_scenario(
        policy_name, plan, workers=workers
    ) == _cross_baseline(policy_name)


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("plan", ("scan", "cost"))
@pytest.mark.parametrize("policy_name", ("fifo", "rot"))
def test_cross_table_hist_stats_identical(policy_name, plan, workers):
    """Histogram statistics under the cross-table layer — join
    build-side predictions, output estimates, blocked probes — change
    nothing observable: every stream, per-input accounting and
    downstream forgetting equals the uniform-statistics scan baseline."""
    assert _run_cross_table_scenario(
        policy_name, plan, workers=workers, stats="hist"
    ) == _cross_baseline(policy_name)


# -- concurrent ingest (queue/applier/epoch handoff) ------------------------


#: Per-round query mix replayed against the store between flushes —
#: skewed toward the low shard so adaptive rebalancing splits mid-run.
_INGEST_QUERIES = (
    (-150, 120), (0, 300), (0, 150), (10, 80), (20, 60), (30, 90),
    (400, 300), (900, 400),
)


def _run_ingest_scenario(
    policy_name: str,
    plan: str,
    workers: int = 1,
    stats: str = "uniform",
    ingest: str = "sequential",
    read_passes: int = 1,
    threaded_readers: bool = False,
):
    """Drive the batched write path end to end; return every observable.

    ``ingest="sequential"`` inserts each batch through the synchronous
    :meth:`insert` facade; ``ingest="batched"`` enqueues a round's
    batches and publishes them with one :meth:`flush` — per-shard
    appliers drain their queues FIFO, one cohort per enqueued chunk,
    so the two schedules must leave bit-identical table state.

    ``threaded_readers=True`` runs each round's ``read_passes`` query
    passes from concurrent threads (instead of sequential repeats),
    proving that shared-gate readers leave results *and* access
    accounting — and therefore every downstream forgetting and
    rebalancing decision — exactly where sequential repeats leave
    them.
    """
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, 250, 500, 1000),
        total_budget=120,
        policy_factory=lambda: _make_policy(policy_name),
        seed=9,
        plan=plan,
        workers=workers,
        rebalance="adaptive",
        split_threshold=1.5,
        stats=stats,
    )
    rng = np.random.default_rng(3)
    observed = []

    def read_pass():
        results = []
        for low, width in _INGEST_QUERIES:
            result = store.range_query(low, low + width)
            results.append((result.rf, result.mf, result.precision))
        results.append(store.aggregate("avg"))
        results.append(store.aggregate("sum", 100, 800))
        return results

    for _ in range(5):
        batches = [rng.integers(-100, 1100, 40) for _ in range(3)]
        if ingest == "sequential":
            for batch in batches:
                store.insert({"a": batch})
        else:
            for batch in batches:
                store.enqueue({"a": batch})
            store.flush()
        assert store.pending_batches == 0
        if threaded_readers:
            passes: list = [None] * read_passes
            start = threading.Barrier(read_passes)

            def run_reader(slot):
                start.wait()
                passes[slot] = read_pass()

            threads = [
                threading.Thread(target=run_reader, args=(i,))
                for i in range(read_passes)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            passes = [read_pass() for _ in range(read_passes)]
        observed.extend(passes)
        observed.append(store.rebalance(floor=5))
        observed.append(store.boundaries)
    observed.append(store.adaptations)
    for partition in store.partitions:
        observed.append(partition.db.table.active_mask().tolist())
        observed.append(partition.db.table.access_counts().tolist())
        observed.append(partition.db.table.last_access_epochs().tolist())
        observed.append(partition.db.table.forgotten_epochs().tolist())
    store.close()
    return observed


_INGEST_BASELINES: dict = {}


def _ingest_baseline(policy_name: str, stats: str = "uniform"):
    key = (policy_name, stats)
    if key not in _INGEST_BASELINES:
        _INGEST_BASELINES[key] = _run_ingest_scenario(
            policy_name, "scan", workers=1, stats=stats, ingest="sequential"
        )
    return _INGEST_BASELINES[key]


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
def test_batched_ingest_identical_to_sequential(policy_name, plan, workers):
    """The tentpole headline: enqueue/flush batched ingest — appliers
    fanning out on the worker pool, epoch-gate handoff publishing each
    flush — leaves every observable (results, access accounting,
    boundary trajectories, forgetting) bit-identical to one-batch-at-
    a-time sequential inserts, under every plan mode and width."""
    got = _run_ingest_scenario(
        policy_name, plan, workers=workers, ingest="batched"
    )
    assert got == _ingest_baseline(policy_name)


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("stats", ("uniform", "hist"))
@pytest.mark.parametrize("policy_name", ("fifo", "rot"))
def test_batched_ingest_identical_under_stats_modes(
    policy_name, stats, workers
):
    """Batched ingest composes with both statistics sources: the hist
    trajectory (multi-way traffic-weighted cuts included) equals its
    own sequential baseline bit for bit."""
    got = _run_ingest_scenario(
        policy_name, "cost", workers=workers, stats=stats, ingest="batched"
    )
    assert got == _ingest_baseline(policy_name, stats=stats)
    if stats == "hist":
        # Guard the setup: the skewed query mix must really have
        # driven traffic-weighted boundary cuts mid-ingest.
        (adaptations,) = [
            o
            for o in got
            if isinstance(o, tuple) and all(isinstance(e, str) for e in o)
        ]
        assert any("split shard" in event for event in adaptations)


def _reader_baseline():
    """Sequential reference for the reader tests: three query passes
    per round, one after another, on one thread."""
    key = ("fifo", "scan", "passes3")
    if key not in _INGEST_BASELINES:
        _INGEST_BASELINES[key] = _run_ingest_scenario(
            "fifo", "scan", workers=1, ingest="sequential", read_passes=3
        )
    return _INGEST_BASELINES[key]


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("ingest", ("sequential", "batched"))
def test_concurrent_readers_identical_to_sequential_repeats(workers, ingest):
    """Readers racing through the epoch gate between flushes observe
    — and leave behind — exactly what sequential repeats would: same
    results, same access counters and traffic tallies, and therefore
    the same rebalance decisions downstream."""
    got = _run_ingest_scenario(
        "fifo",
        "cost",
        workers=workers,
        ingest=ingest,
        read_passes=3,
        threaded_readers=True,
    )
    assert got == _reader_baseline()


def test_free_running_readers_never_observe_torn_batches():
    """Atomicity: a reader concurrent with ingest sees either all of a
    flushed batch or none of it — every observed row count is a
    prefix sum of published batch sizes (budget is large enough that
    nothing is forgotten)."""
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, 250, 500, 750, 1000),
        total_budget=200_000,
        policy_factory=lambda: _make_policy("fifo"),
        workers=4,
    )
    rng = np.random.default_rng(7)
    sizes = [137, 251, 89, 300, 170, 413, 222, 95, 180, 143] * 3
    batches = [rng.integers(0, 1000, size) for size in sizes]
    prefix_sums = {0}
    total = 0
    for size in sizes:
        total += size
        prefix_sums.add(total)
    seen: list = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            result = store.range_query(0, 1000)
            seen.append(result.rf + result.mf)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for batch in batches:
            store.insert({"a": batch})
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    torn = [count for count in seen if count not in prefix_sums]
    assert not torn, f"readers observed torn batches: {sorted(set(torn))[:5]}"
    assert store.ingest_epoch == len(sizes)
    final = store.range_query(0, 1000)
    assert final.rf + final.mf == total
    store.close()


def test_disjoint_writer_threads_identical_to_sequential():
    """Two writer threads inserting into disjoint key ranges — so their
    batches never share a shard queue — leave exactly the state a
    single sequential writer leaves."""

    def build(workers):
        return PartitionedAmnesiaDatabase(
            "a",
            (0, 500, 1000),
            total_budget=300,
            policy_factory=lambda: _make_policy("fifo"),
            workers=workers,
        )

    rng = np.random.default_rng(23)
    low_batches = [rng.integers(0, 500, 50) for _ in range(8)]
    high_batches = [rng.integers(500, 1000, 50) for _ in range(8)]

    def writer(store, batches):
        for batch in batches:
            store.insert({"a": batch})

    concurrent = build(workers=4)
    threads = [
        threading.Thread(target=writer, args=(concurrent, low_batches)),
        threading.Thread(target=writer, args=(concurrent, high_batches)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sequential = build(workers=1)
    writer(sequential, low_batches)
    writer(sequential, high_batches)
    assert concurrent.ingest_epoch == sequential.ingest_epoch == 16
    for got, want in zip(concurrent.partitions, sequential.partitions):
        assert np.array_equal(
            np.sort(got.db.table.values("a")),
            np.sort(want.db.table.values("a")),
        )
        assert got.db.active_count == want.db.active_count
        assert got.db.table.total_rows == want.db.table.total_rows
    concurrent.close()
    sequential.close()


@pytest.mark.parametrize("plan", PLAN_VARIANTS)
def test_simulator_reports_identical_across_plans(plan):
    """A whole simulator run produces the same report under any plan."""

    def run(mode):
        sim = AmnesiaSimulator(
            SimulationConfig(
                dbsize=120, epochs=4, queries_per_epoch=40, plan=mode
            ),
            UniformDistribution(1000),
            _make_policy("rot"),
        )
        report = sim.run()
        return [
            (
                r.epoch,
                r.active_rows,
                r.forgotten,
                None if r.precision is None else r.precision.error_margin,
                r.divergence_js,
            )
            for r in report.epochs
        ]

    assert run("scan") == run(plan)

# -- served caches: hits must be bit-identical to uncached execution ----

from repro.query import PointPredicate  # noqa: E402
from repro.serving import QueryService  # noqa: E402
from repro.serving.server import _fingerprint  # noqa: E402

_SERVE_QUERIES = ((0, 40), (90, 60), (240, 80), (430, 50))


def _served_range_payload(result):
    """The service's range payload, rebuilt from a catalog result."""
    rf, mf = result.rf, result.mf
    return {
        "kind": "range",
        "rf": rf,
        "mf": mf,
        "oracle_count": rf + mf,
        "precision": 1.0 if rf + mf == 0 else rf / (rf + mf),
        "fingerprint": {
            "active": _fingerprint(result.active_positions),
            "missed": _fingerprint(result.missed_positions),
        },
    }


def _served_aggregate_payload(result):
    """The service's aggregate payload (sans position fingerprints —
    :class:`AggregateResult` does not carry positions; the final-state
    arrays compared at the end catch positional divergence anyway)."""
    return {
        "kind": "aggregate",
        "function": result.query.function.value,
        "column": result.query.column,
        "amnesiac_value": result.amnesiac_value,
        "oracle_value": result.oracle_value,
        "active_matches": result.active_matches,
        "oracle_matches": result.oracle_matches,
    }


def _run_served_scenario(
    policy_name: str,
    plan: str,
    stats: str = "uniform",
    workers: int = 1,
    serve: str | None = None,
):
    """Drive policy-fed forgetting through the serving stack (or not).

    ``serve=None`` is the uncached baseline: the same insert / query /
    policy-forget trajectory through ``Catalog.execute`` directly, no
    caches anywhere.  ``serve="paranoid"`` routes everything through a
    :class:`QueryService` that re-executes every cache hit and raises
    on any mismatch (hits are *proven* fresh); ``serve="replay"`` runs
    the production path, where hits replay the entry's recorded access
    positions — final table state equal to the baseline proves the
    replay accounting exact.  Every query is issued twice per round so
    the second issue can hit the cache.
    """
    catalog = Catalog(plan=plan, stats=stats, workers=workers)
    table = catalog.create_table("t", ["a"])
    if plan in ("index", "cost"):
        catalog.create_index("t", "a", SortedIndex, merge_threshold=32)
    service = token = None
    if serve is not None:
        service = QueryService(catalog, paranoid=(serve == "paranoid"))
        service.register_tenant("tenant", tables={"t"})
        token = service.open_session("tenant").token
    policy = _make_policy(policy_name)
    policy_rng = np.random.default_rng(7)
    data_rng = np.random.default_rng(5)
    observed: list = []
    for _ in range(6):
        batch = data_rng.integers(0, 500, 30)
        epoch = table.cohorts.latest_epoch + 1
        if service is not None:
            service.handle(
                {
                    "op": "ingest",
                    "token": token,
                    "source": "t",
                    "rows": {"a": batch.tolist()},
                }
            )
        else:
            with catalog.source_lock("t"):
                table.insert_batch(epoch, {"a": batch})
        for low, width in _SERVE_QUERIES:
            for _repeat in range(2):
                if service is not None:
                    resp = service.handle(
                        {
                            "op": "query",
                            "token": token,
                            "source": "t",
                            "kind": "range",
                            "predicate": {
                                "type": "range",
                                "column": "a",
                                "low": low,
                                "high": low + width,
                            },
                        }
                    )
                    payload = {
                        key: resp[key]
                        for key in (
                            "kind",
                            "rf",
                            "mf",
                            "oracle_count",
                            "precision",
                            "fingerprint",
                        )
                    }
                else:
                    result = catalog.execute(
                        "t",
                        RangeQuery(RangePredicate("a", low, low + width)),
                        epoch,
                    )
                    payload = _served_range_payload(result)
                observed.append(payload)
        for spec in (("avg", 50, 300), ("sum", None, None)):
            function, agg_low, agg_high = spec
            for _repeat in range(2):
                if service is not None:
                    request = {
                        "op": "query",
                        "token": token,
                        "source": "t",
                        "kind": "aggregate",
                        "function": function,
                        "column": "a",
                        "predicate": None
                        if agg_low is None
                        else {
                            "type": "range",
                            "column": "a",
                            "low": agg_low,
                            "high": agg_high,
                        },
                    }
                    resp = service.handle(request)
                    payload = {
                        key: resp[key]
                        for key in (
                            "kind",
                            "function",
                            "column",
                            "amnesiac_value",
                            "oracle_value",
                            "active_matches",
                            "oracle_matches",
                        )
                    }
                else:
                    query = AggregateQuery(
                        AggregateFunction(function),
                        "a",
                        None
                        if agg_low is None
                        else RangePredicate("a", agg_low, agg_high),
                    )
                    result = catalog.execute("t", query, epoch)
                    payload = _served_aggregate_payload(result)
                observed.append(payload)
        victims_n = min(12, table.active_count)
        if victims_n:
            victims = np.asarray(
                policy.select_victims(table, victims_n, epoch, policy_rng),
                dtype=np.int64,
            )
            if service is not None:
                resp = service.handle(
                    {
                        "op": "forget",
                        "token": token,
                        "source": "t",
                        "positions": victims.tolist(),
                    }
                )
                observed.append(resp["forgotten"])
            else:
                with catalog.source_lock("t"):
                    observed.append(int(table.forget(victims, epoch)))
    observed.append(table.active_mask().tolist())
    observed.append(table.access_counts().tolist())
    observed.append(table.last_access_epochs().tolist())
    observed.append(table.forgotten_epochs().tolist())
    if service is not None:
        status = service.stats()
        # The workload must actually exercise the cache, and paranoid
        # verification must never have caught a stale hit.
        assert status["result_cache"]["hits"] > 0
        assert status["stale_hits"] == 0
        service.close()
    catalog.close()
    return observed


_SERVED_BASELINES: dict = {}


def _served_baseline(policy_name: str, stats: str = "uniform"):
    key = (policy_name, stats)
    if key not in _SERVED_BASELINES:
        _SERVED_BASELINES[key] = _run_served_scenario(
            policy_name, "scan", stats=stats, workers=1, serve=None
        )
    return _SERVED_BASELINES[key]


@pytest.mark.parametrize("serve", ("paranoid", "replay"))
@pytest.mark.parametrize("plan", PLAN_VARIANTS)
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_served_caches_identical_to_uncached(policy_name, plan, serve):
    """The serving headline: every served answer — cache hits included
    — and every policy-visible observable equals the uncached scan
    baseline bit for bit, under active policy-driven forgetting, for
    every amnesia policy and plan mode.  ``paranoid`` proves each hit
    against a same-lock fresh execution; ``replay`` proves the
    production hit path's access accounting leaves the policy
    trajectory exactly where fresh execution leaves it."""
    got = _run_served_scenario(policy_name, plan, serve=serve)
    assert got == _served_baseline(policy_name)


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("stats", ("uniform", "hist"))
@pytest.mark.parametrize("policy_name", ("fifo", "rot"))
def test_served_caches_identical_under_stats_and_workers(
    policy_name, stats, workers
):
    """The serving stack composes with both statistics sources and any
    catalog fan-out width: generation-keyed plan reuse over histogram
    statistics changes nothing observable."""
    got = _run_served_scenario(
        policy_name, "cost", stats=stats, workers=workers, serve="replay"
    )
    assert got == _served_baseline(policy_name, stats=stats)


def test_forget_invalidates_only_intersecting_cohorts():
    """Selective invalidation: a forget event evicts exactly the cached
    entries whose recorded cohort sets it touches."""
    catalog = Catalog(plan="cost", stats="hist")
    table = catalog.create_table("t", ["a"])
    table.insert_batch(0, {"a": np.arange(0, 100)})
    table.insert_batch(1, {"a": np.arange(1000, 1100)})
    service = QueryService(catalog)
    service.register_tenant("tenant", tables={"t"})
    token = service.open_session("tenant").token

    def query(low, high):
        return service.handle(
            {
                "op": "query",
                "token": token,
                "source": "t",
                "kind": "range",
                "predicate": {
                    "type": "range",
                    "column": "a",
                    "low": low,
                    "high": high,
                },
            }
        )

    first_low = query(0, 100)
    first_high = query(1000, 1100)
    assert not first_low["cached"] and not first_high["cached"]
    assert service.result_cache.entries_for("t") == 2

    # Forget rows of cohort 1 only: the low-range entry must survive.
    service.handle(
        {
            "op": "forget",
            "token": token,
            "source": "t",
            "positions": list(range(100, 110)),
        }
    )
    assert service.result_cache.entries_for("t") == 1
    second_low = query(0, 100)
    assert second_low["cached"]
    assert second_low["fingerprint"] == first_low["fingerprint"]
    second_high = query(1000, 1100)
    assert not second_high["cached"]
    assert second_high["rf"] == 90 and second_high["mf"] == 10

    # And the surviving entry is really still fresh: paranoid re-check.
    service.paranoid = True
    third_low = query(0, 100)
    assert third_low["cached"]
    assert service.stats()["stale_hits"] == 0
    service.close()
    catalog.close()


# -- crash-at-every-point: failure-path equivalence -------------------------
#
# The harness invariant, extended from "every execution path" to "every
# failure path": for each registered fault point, inject a crash there,
# recover the way a restarted driver would, continue the run, and the
# final state — results, access accounting, on-disk checkpoints — must
# be bit-identical to the uninterrupted run.  A completeness test pins
# these scenarios to ``faults.registered_points()`` so a new point
# cannot be added without extending the suite.

#: Checkpoint-path points, each crashed on the *second* save (the first
#: save of a fresh run has nothing durable behind it yet — the one
#: documented window where recovery has nothing to offer).
_CHECKPOINT_CRASH_POINTS = (
    "checkpoint.tmp",
    "checkpoint.rotate",
    "checkpoint.done",
)

#: Ingest-path points with crash ordinals chosen to land mid-run.
_INGEST_CRASH_SPECS = {
    "ingest.enqueue": "ingest.enqueue:crash@7",
    "ingest.apply": "ingest.apply:crash@8",
    "ingest.applied": "ingest.applied:crash@3",
    "rebalance.adapt": "rebalance.adapt:crash@3",
}

#: Serving-path fault specs; "transient" marks the flaky (retryable
#: 503) flavour rather than a hard crash.
_SERVE_FAULT_SPECS = (
    ("serve.handle:crash@4", "serve.handle"),
    ("serve.query:crash@3", "serve.query"),
    ("serve.query:flaky=0.35;seed=13", "transient"),
)


def test_crash_suite_covers_every_registered_point():
    """Adding a fault point without a crash-recovery scenario fails here."""
    exercised = (
        set(_CHECKPOINT_CRASH_POINTS)
        | set(_INGEST_CRASH_SPECS)
        | {"serve.handle", "serve.query"}
    )
    assert exercised == set(faults.registered_points())


def _checkpointed_sim_run(base_dir, plan: str, spec: str | None = None):
    """A checkpointing simulator run under ``spec``; the driver recovers
    from injected checkpoint crashes the way a restarted process would:
    prove ``recover_store`` finds a valid snapshot, redo the lost save,
    continue.  Returns ``(fingerprint, crash_points)``."""
    base_dir.mkdir(parents=True, exist_ok=True)
    config = SimulationConfig(
        dbsize=80,
        epochs=4,
        queries_per_epoch=6,
        plan=plan,
        checkpoint=str(base_dir / "ckpt"),
    )
    sim = AmnesiaSimulator(config, UniformDistribution(500), _make_policy("fifo"))
    crashes: list[str] = []
    context = faults.armed(spec) if spec else contextlib.nullcontext()
    with context:
        sim.load_initial()  # save #1 — crashes are armed at hit 2
        while sim.current_epoch < config.epochs:
            try:
                sim.step()
            except FaultInjected as fault:
                crashes.append(fault.point)
                # The crash interrupted the save only: prove the disk
                # still holds a loadable snapshot, then redo the save
                # the crash destroyed (the epoch itself completed).
                recovered, _ = recover_store(config.checkpoint)
                assert recovered.active_count == config.dbsize
                sim.checkpoint(config.checkpoint, rotate=True)
    digest: list = [
        (r.epoch, r.active_rows, r.total_rows, r.inserted, r.forgotten,
         r.divergence_js)
        for r in sim.reports
    ]
    digest.append(sim.table.values(config.column).tolist())
    digest.append(sim.table.active_mask().tolist())
    digest.append(sim.table.access_counts().tolist())
    # The durable state must converge too: the final checkpoint of a
    # crashed-and-recovered run equals the uninterrupted run's.
    final, _ = recover_store(config.checkpoint)
    digest.append(final.values(config.column).tolist())
    digest.append(final.active_mask().tolist())
    return digest, crashes


@pytest.mark.parametrize("point", _CHECKPOINT_CRASH_POINTS)
@pytest.mark.parametrize("plan", ("scan", "cost"))
def test_crash_during_checkpoint_invisible_after_recovery(
    tmp_path, point, plan
):
    clean, no_crashes = _checkpointed_sim_run(tmp_path / "clean", plan)
    assert no_crashes == []
    faulted, crashes = _checkpointed_sim_run(
        tmp_path / "faulted", plan, f"{point}:crash@2"
    )
    assert crashes == [point]
    assert faulted == clean


def _crash_recovering_ingest_run(
    policy_name: str, workers: int, spec: str | None = None
):
    """Batched sharded ingest where every write operation survives one
    injected crash by retrying — the in-process equivalent of a driver
    restart against intact shared state.  Returns
    ``(fingerprint, crash_points)``."""
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, 250, 500, 1000),
        total_budget=120,
        policy_factory=lambda: _make_policy(policy_name),
        seed=9,
        plan="cost",
        workers=workers,
        rebalance="adaptive",
        split_threshold=1.5,
    )
    rng = np.random.default_rng(3)
    observed: list = []
    crashes: list[str] = []

    def attempt(operation):
        try:
            return operation()
        except FaultInjected as fault:
            crashes.append(fault.point)
            return operation()

    context = faults.armed(spec) if spec else contextlib.nullcontext()
    with context:
        for _ in range(5):
            for batch in (rng.integers(-100, 1100, 40) for _ in range(3)):
                attempt(lambda b=batch: store.enqueue({"a": b}))
            observed.append(attempt(store.flush))
            assert store.pending_batches == 0
            for low, width in _INGEST_QUERIES:
                result = store.range_query(low, low + width)
                observed.append((result.rf, result.mf, result.precision))
            observed.append(attempt(lambda: store.rebalance(floor=5)))
            observed.append(store.boundaries)
    observed.append(store.adaptations)
    for partition in store.partitions:
        observed.append(partition.db.table.active_mask().tolist())
        observed.append(partition.db.table.access_counts().tolist())
        observed.append(partition.db.table.last_access_epochs().tolist())
        observed.append(partition.db.table.forgotten_epochs().tolist())
    store.close()
    return observed, crashes


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("policy_name", ("fifo", "uniform"))
@pytest.mark.parametrize("point", sorted(_INGEST_CRASH_SPECS))
def test_crash_during_ingest_invisible_after_retry(
    point, policy_name, workers
):
    """A crash in enqueue/apply/publish/rebalance, once recovered by a
    retry, leaves every observable — results, epochs, boundaries,
    access accounting, forgetting — bit-identical to the crash-free
    run, at both worker widths."""
    clean, no_crashes = _crash_recovering_ingest_run(policy_name, workers)
    assert no_crashes == []
    faulted, crashes = _crash_recovering_ingest_run(
        policy_name, workers, _INGEST_CRASH_SPECS[point]
    )
    assert crashes == [point]
    assert faulted == clean


def _crash_recovering_service_run(plan: str, spec: str | None = None):
    """Drive a paranoid QueryService through queries, cache hits,
    ingests and forgets, retrying through injected crashes and
    transient faults.  Returns ``(fingerprint, crash_points)``."""
    catalog = Catalog(plan=plan, stats="hist")
    table = catalog.create_table("obs", ["value"])
    table.insert_batch(0, {"value": np.arange(300) % 211})
    service = QueryService(catalog, paranoid=True)
    service.register_tenant("alice")
    token = service.open_session("alice").token
    observed: list = []
    crashes: list[str] = []

    def attempt(operation):
        for _ in range(10):
            try:
                return operation()
            except FaultInjected as fault:
                crashes.append(fault.point)
            except TransientFault:
                crashes.append("transient")
        raise AssertionError("retry budget exhausted")

    context = faults.armed(spec) if spec else contextlib.nullcontext()
    with context:
        for round_no in range(3):
            for low in (0, 40, 80, 0, 40):  # repeats drive cache hits
                request = {
                    "op": "query",
                    "token": token,
                    "source": "obs",
                    "kind": "range",
                    "predicate": {
                        "type": "range",
                        "column": "value",
                        "low": low,
                        "high": low + 50,
                    },
                }
                response = attempt(lambda r=request: service.handle(r))
                observed.append(
                    (
                        response["rf"],
                        response["mf"],
                        response["cached"],
                        response["epoch"],
                        response["fingerprint"],
                    )
                )
            aggregate = attempt(
                lambda: service.handle(
                    {
                        "op": "query",
                        "token": token,
                        "source": "obs",
                        "kind": "aggregate",
                        "function": "avg",
                        "column": "value",
                        "predicate": {
                            "type": "range",
                            "column": "value",
                            "low": 20,
                            "high": 160,
                        },
                    }
                )
            )
            observed.append(
                (
                    aggregate["amnesiac_value"],
                    aggregate["oracle_value"],
                    aggregate["cached"],
                )
            )
            ingested = attempt(
                lambda r=round_no: service.handle(
                    {
                        "op": "ingest",
                        "token": token,
                        "source": "obs",
                        "rows": {"value": list(range(r * 5, r * 5 + 7))},
                    }
                )
            )
            observed.append((ingested["inserted"], ingested["epoch"]))
            forgotten = attempt(
                lambda: service.handle(
                    {"op": "forget", "token": token, "source": "obs", "n": 7}
                )
            )
            observed.append((forgotten["forgotten"], forgotten["epoch"]))
    observed.append(table.values("value").tolist())
    observed.append(table.active_mask().tolist())
    observed.append(table.access_counts().tolist())
    service.close()
    catalog.close()
    return observed, crashes


@pytest.mark.parametrize("plan", ("cost", "zonemap"))
@pytest.mark.parametrize("spec,point", _SERVE_FAULT_SPECS)
def test_fault_during_serving_invisible_after_retry(plan, spec, point):
    """Both serving points fire before any mutation, so a crashed or
    transiently-failed request retried by the client leaves responses,
    cache behaviour and access accounting bit-identical to the
    fault-free run — including under paranoid cache validation."""
    clean, no_crashes = _crash_recovering_service_run(plan)
    assert no_crashes == []
    faulted, crashes = _crash_recovering_service_run(plan, spec)
    assert crashes and set(crashes) == {point}
    if "crash" in spec:
        assert crashes == [point]  # one-shot: exactly one retry needed
    assert faulted == clean
