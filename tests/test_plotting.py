"""Tests for repro.plotting: heat maps, line charts, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.plotting import (
    render_heatmap,
    render_linechart,
    render_table,
    shade,
)


class TestShade:
    def test_extremes(self):
        assert shade(0.0) == " "
        assert shade(1.0) == "█"

    def test_monotone_ramp(self):
        ramp = " ░▒▓█"
        levels = [shade(f) for f in (0.0, 0.25, 0.45, 0.7, 1.0)]
        assert levels == list(ramp)

    def test_width(self):
        assert shade(1.0, width=3) == "███"

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            shade(1.5)
        with pytest.raises(ConfigError):
            shade(-0.1)


class TestHeatmap:
    def test_renders_rows_and_axis(self):
        art = render_heatmap(
            {"fifo": np.array([0.0, 1.0]), "ante": np.array([1.0, 0.0])},
            title="demo",
        )
        assert "demo" in art
        assert "fifo" in art and "ante" in art
        assert "█" in art and "Timeline" in art
        assert " 0 " in art and " 1 " in art

    def test_validation(self):
        with pytest.raises(ConfigError):
            render_heatmap({})
        with pytest.raises(ConfigError):
            render_heatmap({"a": np.array([0.5]), "b": np.array([0.5, 0.5])})
        with pytest.raises(ConfigError):
            render_heatmap({"a": np.empty(0)})


class TestLinechart:
    def test_renders_series_and_legend(self):
        chart = render_linechart(
            {"fifo": np.array([1.0, 0.5, 0.1]),
             "rot": np.array([1.0, 0.8, 0.6])},
            title="precision",
        )
        assert "precision" in chart
        assert "* fifo" in chart and "+ rot" in chart
        assert "1.00" in chart and "0.00" in chart

    def test_clipping(self):
        chart = render_linechart({"x": np.array([2.0, -1.0])})
        assert "x" in chart  # no crash; values clamped

    def test_validation(self):
        with pytest.raises(ConfigError):
            render_linechart({})
        with pytest.raises(ConfigError):
            render_linechart({"a": np.array([1.0])}, height=2)
        with pytest.raises(ConfigError):
            render_linechart({"a": np.array([1.0])}, y_min=1.0, y_max=0.0)
        with pytest.raises(ConfigError):
            render_linechart(
                {"a": np.array([1.0]), "b": np.array([1.0, 2.0])}
            )
        with pytest.raises(ConfigError):
            render_linechart({"a": np.empty(0)})

    def test_too_many_series(self):
        series = {f"s{i}": np.array([0.5]) for i in range(9)}
        with pytest.raises(ConfigError):
            render_linechart(series)


class TestTable:
    def test_alignment_and_header(self):
        text = render_table(["policy", "E"], [["fifo", 0.25], ["rot", 0.5]])
        lines = text.splitlines()
        assert lines[0].startswith("policy")
        assert set(lines[1]) <= {"-", " "}
        assert "fifo" in lines[2]

    def test_cell_formats(self):
        text = render_table(
            ["v"],
            [[None], [True], [0.123456], [1e-9], [float("nan")], [12345.0]],
        )
        assert "-" in text
        assert "yes" in text
        assert "0.1235" in text
        assert "1.000e-09" in text
        assert "1.234e+04" in text or "12345" in text

    def test_title(self):
        assert render_table(["a"], [[1]], title="T").startswith("T")

    def test_validation(self):
        with pytest.raises(ConfigError):
            render_table([], [])
        with pytest.raises(ConfigError):
            render_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text
