"""Property-based tests: codecs, sampling, summaries, divergences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.amnesia import weighted_sample_without_replacement
from repro.compression import CODEC_NAMES, make_codec
from repro.query import AggregateFunction
from repro.stats import js_divergence, kl_divergence, total_variation
from repro.summaries import ColumnSummary
from repro.storage import Bitmap

int_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(0, 300),
    elements=st.integers(-(2**40), 2**40),
)


@pytest.mark.parametrize("codec_name", CODEC_NAMES)
@given(values=int_arrays)
@settings(max_examples=30, deadline=None)
def test_codec_roundtrip_property(codec_name, values):
    """decode(encode(x)) == x for arbitrary int64 arrays."""
    codec = make_codec(codec_name)
    block = codec.encode(values)
    assert np.array_equal(codec.decode(block), values)
    assert block.nbytes >= 0
    assert block.n_values == values.size


@given(
    n_candidates=st.integers(1, 100),
    quota_frac=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=50, deadline=None)
def test_weighted_sampling_contract(n_candidates, quota_frac, seed):
    rng = np.random.default_rng(seed)
    candidates = rng.choice(10_000, n_candidates, replace=False)
    weights = rng.random(n_candidates) * (rng.random(n_candidates) > 0.3)
    n = int(quota_frac * n_candidates)
    out = weighted_sample_without_replacement(candidates, weights, n, rng)
    assert out.size == n
    assert np.unique(out).size == n
    assert np.isin(out, candidates).all()


@given(
    x=arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 10_000)),
    y=arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 10_000)),
)
@settings(max_examples=40, deadline=None)
def test_summary_merge_is_concat(x, y):
    merged = ColumnSummary.from_values(x).merge(ColumnSummary.from_values(y))
    union = np.concatenate([x, y])
    assert merged.count == union.size
    assert merged.mean == pytest.approx(union.mean(), rel=1e-9, abs=1e-9)
    assert merged.variance == pytest.approx(union.var(), rel=1e-6, abs=1e-6)
    assert merged.min == union.min() and merged.max == union.max()


@given(
    values=arrays(np.int64, st.integers(1, 100), elements=st.integers(0, 1000))
)
@settings(max_examples=30, deadline=None)
def test_aggregates_match_numpy(values):
    assert AggregateFunction.AVG.compute(values) == pytest.approx(values.mean())
    assert AggregateFunction.SUM.compute(values) == pytest.approx(values.sum())
    assert AggregateFunction.VAR.compute(values) == pytest.approx(
        values.var(), abs=1e-6
    )


counts = arrays(np.int64, 16, elements=st.integers(0, 1000))


@given(p=counts, q=counts)
@settings(max_examples=50, deadline=None)
def test_divergence_properties(p, q):
    """Non-negativity, identity of indiscernibles (weak), symmetry."""
    assert kl_divergence(p, q) >= -1e-12
    js = js_divergence(p, q)
    assert -1e-12 <= js <= np.log(2) + 1e-9
    assert js == pytest.approx(js_divergence(q, p), abs=1e-9)
    tv = total_variation(p, q)
    assert -1e-12 <= tv <= 1.0 + 1e-12
    assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)


@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 99)), max_size=200))
@settings(max_examples=40)
def test_bitmap_random_walk(ops):
    """Single-bit random walk keeps popcount exact."""
    bm = Bitmap()
    bm.extend(100, value=False)
    reference = np.zeros(100, dtype=bool)
    for set_it, pos in ops:
        if set_it:
            bm.set(pos)
            reference[pos] = True
        else:
            bm.clear(pos)
            reference[pos] = False
    assert bm.count_set() == int(reference.sum())
