"""Property-based tests: every amnesia policy honours the contract.

For any table state and any feasible quota, a policy must return
exactly ``n`` distinct, active victims (privacy wrappers may overshoot
but never undershoot).  This is the invariant the simulator's budget
guarantee rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amnesia import (
    POLICY_NAMES,
    CompositeAmnesia,
    FifoAmnesia,
    PrivacyRetentionWrapper,
    UniformAmnesia,
    make_policy,
)
from repro.storage import Table


def build_table(batch_sizes, seed):
    rng = np.random.default_rng(seed)
    table = Table("t", ["a"])
    for epoch, n in enumerate(batch_sizes):
        table.insert_batch(epoch, {"a": rng.integers(0, 500, n)})
    # Sprinkle access counts so frequency-driven policies see signal.
    active = table.active_positions()
    touched = rng.choice(active, max(active.size // 2, 1), replace=False)
    table.record_access(np.repeat(touched, 3), epoch=len(batch_sizes))
    return table


table_shapes = st.lists(st.integers(5, 40), min_size=1, max_size=5)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@given(batch_sizes=table_shapes, seed=st.integers(0, 2**31), quota_frac=st.floats(0.0, 1.0))
@settings(max_examples=25, deadline=None)
def test_policy_contract(policy_name, batch_sizes, seed, quota_frac):
    table = build_table(batch_sizes, seed)
    kwargs = (
        {"column": "a"} if policy_name in ("pair", "dist", "stratified") else {}
    )
    policy = make_policy(policy_name, **kwargs)
    n = int(quota_frac * table.active_count)
    rng = np.random.default_rng(seed + 1)

    victims = policy.select_victims(table, n, len(batch_sizes), rng)
    victims = np.asarray(victims, dtype=np.int64)

    assert victims.size == n
    assert np.unique(victims).size == victims.size
    if victims.size:
        assert table.is_active(victims).all()


@given(
    batch_sizes=table_shapes,
    seed=st.integers(0, 2**31),
    max_age=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_privacy_wrapper_contract(batch_sizes, seed, max_age):
    """Privacy wrapper: >= n victims, every expired tuple included."""
    table = build_table(batch_sizes, seed)
    policy = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=max_age)
    epoch = len(batch_sizes)
    n = min(5, table.active_count)
    victims = policy.select_victims(
        table, n, epoch, np.random.default_rng(seed)
    )
    assert victims.size >= n or victims.size == policy.expired(table, epoch).size
    assert np.unique(victims).size == victims.size
    expired = policy.expired(table, epoch)
    assert np.isin(expired, victims).all()


@given(
    batch_sizes=table_shapes,
    seed=st.integers(0, 2**31),
    weight=st.floats(0.1, 10.0),
)
@settings(max_examples=25, deadline=None)
def test_composite_contract(batch_sizes, seed, weight):
    table = build_table(batch_sizes, seed)
    mix = CompositeAmnesia([(weight, FifoAmnesia()), (1.0, UniformAmnesia())])
    n = table.active_count // 2
    victims = mix.select_victims(
        table, n, len(batch_sizes), np.random.default_rng(seed)
    )
    assert victims.size == n
    assert np.unique(victims).size == n
    if n:
        assert table.is_active(victims).all()


@pytest.mark.parametrize("policy_name", ["fifo", "uniform", "rot", "area"])
@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_exclusion_always_honoured(policy_name, seed):
    rng = np.random.default_rng(seed)
    table = Table("t", ["a"])
    table.insert_batch(0, {"a": rng.integers(0, 100, 60)})
    exclude = rng.choice(60, 20, replace=False)
    policy = make_policy(policy_name)
    victims = policy.select_victims(
        table, 30, 1, np.random.default_rng(seed + 1), exclude=exclude
    )
    assert not np.isin(victims, exclude).any()
