"""Property-based tests (hypothesis) for the storage substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Bitmap, IntColumn, Table

positions_lists = st.lists(st.integers(0, 199), min_size=0, max_size=120)


class TestBitmapProperties:
    @given(clear=positions_lists, reset=positions_lists)
    @settings(max_examples=60)
    def test_popcount_matches_ground_truth(self, clear, reset):
        """Incremental popcount == brute-force count after any op mix."""
        bm = Bitmap()
        bm.extend(200, value=True)
        reference = np.ones(200, dtype=bool)
        if clear:
            bm.clear_many(np.array(clear))
            reference[np.array(clear)] = False
        if reset:
            bm.set_many(np.array(reset))
            reference[np.array(reset)] = True
        assert bm.count_set() == int(reference.sum())
        assert np.array_equal(bm.to_array(), reference)

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_extend_patterns(self, pattern):
        bm = Bitmap()
        for bit in pattern:
            bm.extend(1, value=bit)
        assert len(bm) == len(pattern)
        assert bm.count_set() == sum(pattern)
        assert list(bm) == pattern

    @given(clear=positions_lists)
    @settings(max_examples=40)
    def test_set_clear_partition(self, clear):
        """set_positions and clear_positions always partition [0, n)."""
        bm = Bitmap()
        bm.extend(200, value=True)
        if clear:
            bm.clear_many(np.array(clear))
        set_pos = set(bm.set_positions().tolist())
        clear_pos = set(bm.clear_positions().tolist())
        assert set_pos | clear_pos == set(range(200))
        assert not (set_pos & clear_pos)


class TestColumnProperties:
    @given(
        st.lists(
            st.lists(st.integers(-(2**62), 2**62), min_size=0, max_size=40),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40)
    def test_append_many_concatenates(self, chunks):
        col = IntColumn("a", initial_capacity=1)
        expected: list[int] = []
        for chunk in chunks:
            col.append_many(chunk)
            expected.extend(chunk)
        assert col.values().tolist() == expected


class TestTableProperties:
    @given(
        batches=st.lists(
            st.integers(1, 30), min_size=1, max_size=8
        ),
        forget_seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40)
    def test_counts_always_consistent(self, batches, forget_seed):
        """active + forgotten == total after any insert/forget mix."""
        rng = np.random.default_rng(forget_seed)
        table = Table("t", ["a"])
        for epoch, n in enumerate(batches):
            table.insert_batch(epoch, {"a": rng.integers(0, 100, n)})
            active = table.active_positions()
            if active.size:
                k = int(rng.integers(0, active.size + 1))
                if k:
                    table.forget(rng.choice(active, k, replace=False), epoch)
            assert table.active_count + table.forgotten_count == table.total_rows
            assert table.active_positions().size == table.active_count
            # Cohort activity re-aggregates to the active count.
            sizes = {c.epoch: c.size for c in table.cohorts}
            weighted = sum(
                frac * sizes[e] for e, frac in table.cohort_activity().items()
            )
            assert round(weighted) == table.active_count

    @given(forget_seed=st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_oracle_values_never_change(self, forget_seed):
        """Forgetting never mutates the value history."""
        rng = np.random.default_rng(forget_seed)
        table = Table("t", ["a"])
        values = rng.integers(0, 1000, 100)
        table.insert_batch(0, {"a": values})
        before = table.values("a").copy()
        victims = rng.choice(100, int(rng.integers(1, 100)), replace=False)
        table.forget(victims, epoch=1)
        assert np.array_equal(table.values("a"), before)


class TestCheckpointProperties:
    @given(
        batch_sizes=st.lists(st.integers(1, 25), min_size=1, max_size=5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_save_load_roundtrip(self, batch_sizes, seed, tmp_path_factory):
        """Any reachable table state round-trips through a checkpoint."""
        from repro.storage import load_table, save_table

        rng = np.random.default_rng(seed)
        table = Table("t", ["a", "b"])
        for epoch, n in enumerate(batch_sizes):
            table.insert_batch(
                epoch,
                {"a": rng.integers(0, 50, n), "b": rng.integers(0, 9, n)},
            )
            active = table.active_positions()
            k = int(rng.integers(0, active.size + 1))
            if k:
                table.forget(rng.choice(active, k, replace=False), epoch)
            touched = table.active_positions()
            if touched.size:
                table.record_access(
                    rng.choice(touched, min(5, touched.size)), epoch
                )

        path = tmp_path_factory.mktemp("ckpt") / "t.npz"
        restored = load_table(save_table(table, path))
        assert np.array_equal(restored.active_mask(), table.active_mask())
        assert np.array_equal(restored.values("a"), table.values("a"))
        assert np.array_equal(restored.values("b"), table.values("b"))
        assert np.array_equal(
            restored.forgotten_epochs(), table.forgotten_epochs()
        )
        assert np.array_equal(
            restored.access_counts(), table.access_counts()
        )
        assert restored.cohorts.epochs() == table.cohorts.epochs()
