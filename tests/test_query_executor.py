"""Tests for repro.query: queries, results, executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import QueryError
from repro.query import (
    AggregateFunction,
    AggregateQuery,
    QueryExecutor,
    RangePredicate,
    RangeQuery,
    TruePredicate,
)
from repro.storage import Table


class TestAggregateFunction:
    def test_all_functions(self):
        values = np.array([1, 2, 3, 4])
        assert AggregateFunction.AVG.compute(values) == 2.5
        assert AggregateFunction.SUM.compute(values) == 10.0
        assert AggregateFunction.COUNT.compute(values) == 4.0
        assert AggregateFunction.MIN.compute(values) == 1.0
        assert AggregateFunction.MAX.compute(values) == 4.0
        assert AggregateFunction.VAR.compute(values) == pytest.approx(1.25)
        assert AggregateFunction.STD.compute(values) == pytest.approx(np.sqrt(1.25))

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        assert AggregateFunction.COUNT.compute(empty) == 0.0
        assert AggregateFunction.AVG.compute(empty) is None
        assert AggregateFunction.MIN.compute(empty) is None

    def test_from_string(self):
        assert AggregateFunction("avg") is AggregateFunction.AVG


class TestRangeExecution:
    def test_split_active_vs_missed(self, small_table):
        small_table.forget(np.arange(0, 50), epoch=1)
        executor = QueryExecutor(small_table)
        result = executor.execute_range(
            RangeQuery(RangePredicate("a", 40, 60)), epoch=1
        )
        assert result.rf == 10  # values 50..59
        assert result.mf == 10  # values 40..49 forgotten
        assert result.oracle_count == 20
        assert result.precision == 0.5
        assert sorted(result.active_positions.tolist()) == list(range(50, 60))
        assert sorted(result.missed_positions.tolist()) == list(range(40, 50))

    def test_empty_oracle_result_has_precision_one(self, small_table):
        executor = QueryExecutor(small_table)
        result = executor.execute_range(
            RangeQuery(RangePredicate("a", 1000, 2000)), epoch=1
        )
        assert result.rf == 0 and result.mf == 0
        assert result.precision == 1.0

    def test_access_accounting(self, small_table):
        executor = QueryExecutor(small_table)
        executor.execute_range(RangeQuery(RangePredicate("a", 0, 3)), epoch=5)
        counts = small_table.access_counts()
        assert counts[:3].tolist() == [1, 1, 1]
        assert counts[3] == 0
        assert small_table.last_access_epochs()[0] == 5

    def test_access_accounting_skips_forgotten(self, small_table):
        small_table.forget(np.array([0]), epoch=1)
        QueryExecutor(small_table).execute_range(
            RangeQuery(RangePredicate("a", 0, 3)), epoch=1
        )
        assert small_table.access_counts()[0] == 0

    def test_record_access_disabled(self, small_table):
        executor = QueryExecutor(small_table, record_access=False)
        executor.execute_range(RangeQuery(RangePredicate("a", 0, 3)), epoch=1)
        assert (small_table.access_counts() == 0).all()

    def test_empty_table_raises(self):
        table = Table("t", ["a"])
        with pytest.raises(QueryError):
            QueryExecutor(table).execute_range(
                RangeQuery(RangePredicate("a", 0, 1)), epoch=0
            )


class TestAggregateExecution:
    def test_whole_table_avg(self, small_table):
        small_table.forget(np.arange(50, 100), epoch=1)  # values 50..99
        executor = QueryExecutor(small_table)
        result = executor.execute_aggregate(
            AggregateQuery(AggregateFunction.AVG, "a"), epoch=1
        )
        assert result.amnesiac_value == pytest.approx(24.5)
        assert result.oracle_value == pytest.approx(49.5)
        assert result.active_matches == 50
        assert result.oracle_matches == 100
        assert result.missed_matches == 50
        assert result.tuple_precision == 0.5
        assert result.relative_error == pytest.approx(25.0 / 49.5)
        assert not result.is_exact()

    def test_windowed_aggregate(self, small_table):
        executor = QueryExecutor(small_table)
        query = AggregateQuery(
            AggregateFunction.SUM, "a", RangePredicate("a", 10, 12)
        )
        result = executor.execute_aggregate(query, epoch=1)
        assert result.amnesiac_value == 21.0
        assert result.is_exact()
        assert result.precision == 1.0

    def test_null_answer_counts_as_total_loss(self, small_table):
        small_table.forget(np.arange(100), epoch=1)
        executor = QueryExecutor(small_table)
        result = executor.execute_aggregate(
            AggregateQuery(AggregateFunction.AVG, "a"), epoch=1
        )
        assert result.amnesiac_value is None
        assert result.relative_error == 1.0
        assert result.precision == 0.0

    def test_unknown_column_raises(self, small_table):
        with pytest.raises(QueryError):
            QueryExecutor(small_table).execute_aggregate(
                AggregateQuery(AggregateFunction.AVG, "nope"), epoch=1
            )

    def test_effective_predicate_default(self):
        query = AggregateQuery(AggregateFunction.AVG, "a")
        assert isinstance(query.effective_predicate(), TruePredicate)
        assert query.columns == ("a",)

    def test_columns_include_predicate(self):
        query = AggregateQuery(
            AggregateFunction.AVG, "a", RangePredicate("b", 0, 1)
        )
        assert query.columns == ("a", "b")


class TestDispatch:
    def test_execute_dispatches(self, small_table):
        executor = QueryExecutor(small_table)
        range_result = executor.execute(
            RangeQuery(RangePredicate("a", 0, 5)), epoch=1
        )
        agg_result = executor.execute(
            AggregateQuery(AggregateFunction.COUNT, "a"), epoch=1
        )
        assert range_result.rf == 5
        assert agg_result.amnesiac_value == 100.0

    def test_execute_rejects_unknown(self, small_table):
        with pytest.raises(QueryError):
            QueryExecutor(small_table).execute("not a query", epoch=1)


class TestResultEdgeCases:
    def test_aggregate_relative_error_floor(self, small_table):
        """Oracle MIN of a serial column is 0 — denominator is floored."""
        small_table.forget(np.array([0]), epoch=1)
        result = QueryExecutor(small_table).execute_aggregate(
            AggregateQuery(AggregateFunction.MIN, "a"), epoch=1
        )
        assert result.oracle_value == 0.0
        assert result.amnesiac_value == 1.0
        assert result.relative_error == 1.0  # |1-0| / max(|0|, 1)
