"""Tests for repro.query.generators: the paper's workload templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.query import (
    AggregateFunction,
    AggregateQuery,
    AggregateQueryGenerator,
    MixedWorkload,
    RangeQuery,
    RangeQueryGenerator,
)
from repro.storage import Table


class TestRangeQueryGenerator:
    def test_window_shape(self, small_table):
        gen = RangeQueryGenerator("a", selectivity=0.05, rng=7)
        query = gen.generate(small_table)
        # RANGE = max seen = 99, half width = round(0.05*99) ≈ 5.
        assert query.predicate.width == 10

    def test_minimum_half_width_is_one(self, small_table):
        gen = RangeQueryGenerator("a", selectivity=0.001, rng=7)
        assert gen.generate(small_table).predicate.width == 2

    def test_anchor_active_avoids_pure_forgotten(self, small_table):
        """Anchors come from surviving tuples."""
        small_table.forget(np.arange(0, 90), epoch=1)  # keep values 90..99
        gen = RangeQueryGenerator("a", selectivity=0.01, anchor="active", rng=3)
        for _ in range(50):
            query = gen.generate(small_table)
            centre = (query.predicate.low + query.predicate.high) // 2
            assert 89 <= centre <= 100

    def test_anchor_active_falls_back_when_all_forgotten(self, small_table):
        small_table.forget(np.arange(100), epoch=1)
        gen = RangeQueryGenerator("a", anchor="active", rng=3)
        assert isinstance(gen.generate(small_table), RangeQuery)

    def test_anchor_oracle_reaches_forgotten_values(self, small_table):
        small_table.forget(np.arange(90, 100), epoch=1)
        gen = RangeQueryGenerator("a", selectivity=0.01, anchor="oracle", rng=5)
        centres = {
            (q.predicate.low + q.predicate.high) // 2
            for q in gen.batch(small_table, 200)
        }
        assert any(c >= 90 for c in centres)

    def test_anchor_recent_uses_newest_cohort(self, epoch_table):
        gen = RangeQueryGenerator("a", selectivity=0.001, anchor="recent", rng=5)
        for query in gen.batch(epoch_table, 20):
            centre = (query.predicate.low + query.predicate.high) // 2
            assert 199 <= centre <= 220  # epoch-2 values are 200..219

    def test_anchor_domain_bounds(self, small_table):
        gen = RangeQueryGenerator("a", anchor="domain", rng=5)
        for query in gen.batch(small_table, 50):
            centre = (query.predicate.low + query.predicate.high) // 2
            assert -1 <= centre <= 100

    def test_invalid_anchor(self):
        with pytest.raises(ConfigError):
            RangeQueryGenerator("a", anchor="nowhere")

    def test_invalid_selectivity(self):
        with pytest.raises(ConfigError):
            RangeQueryGenerator("a", selectivity=0.0)
        with pytest.raises(ConfigError):
            RangeQueryGenerator("a", selectivity=1.5)

    def test_batch_size_validated(self, small_table):
        gen = RangeQueryGenerator("a", rng=1)
        with pytest.raises(ConfigError):
            gen.batch(small_table, 0)

    def test_deterministic_with_seed(self, small_table):
        a = RangeQueryGenerator("a", rng=9).batch(small_table, 5)
        b = RangeQueryGenerator("a", rng=9).batch(small_table, 5)
        assert [(q.predicate.low, q.predicate.high) for q in a] == [
            (q.predicate.low, q.predicate.high) for q in b
        ]


class TestAggregateQueryGenerator:
    def test_whole_table_query(self, small_table):
        gen = AggregateQueryGenerator("a", rng=1)
        query = gen.generate(small_table)
        assert isinstance(query, AggregateQuery)
        assert query.predicate is None
        assert query.function is AggregateFunction.AVG

    def test_windowed_query(self, small_table):
        gen = AggregateQueryGenerator(
            "a", function="sum", predicate_selectivity=0.05, rng=1
        )
        query = gen.generate(small_table)
        assert query.function is AggregateFunction.SUM
        assert query.predicate is not None
        assert query.predicate.width == 10

    def test_batch(self, small_table):
        gen = AggregateQueryGenerator("a", rng=2)
        assert len(gen.batch(small_table, 7)) == 7


class TestMixedWorkload:
    def test_mixes_both_kinds(self, small_table):
        mix = MixedWorkload(
            [
                (1.0, RangeQueryGenerator("a", rng=1)),
                (1.0, AggregateQueryGenerator("a", rng=2)),
            ],
            rng=3,
        )
        batch = mix.batch(small_table, 100)
        kinds = {type(q).__name__ for q in batch}
        assert kinds == {"RangeQuery", "AggregateQuery"}

    def test_weights_respected(self, small_table):
        mix = MixedWorkload(
            [
                (9.0, RangeQueryGenerator("a", rng=1)),
                (1.0, AggregateQueryGenerator("a", rng=2)),
            ],
            rng=3,
        )
        batch = mix.batch(small_table, 500)
        n_range = sum(isinstance(q, RangeQuery) for q in batch)
        assert n_range > 400

    def test_validation(self):
        with pytest.raises(ConfigError):
            MixedWorkload([])
        with pytest.raises(ConfigError):
            MixedWorkload([(0.0, RangeQueryGenerator("a"))])
