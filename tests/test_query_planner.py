"""Tests for repro.query.planner: plan selection, fallbacks, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, QueryError
from repro.indexes import BlockRangeIndex, HashIndex, SortedIndex
from repro.query import (
    PLAN_MODES,
    AggregateFunction,
    AggregateQuery,
    AndPredicate,
    PointPredicate,
    QueryExecutor,
    QueryPlanner,
    RangePredicate,
    RangeQuery,
    TruePredicate,
)
from repro.query.planner import HASH_RANGE_LIMIT
from repro.stats import TableHistogramStats
from repro.storage import CohortZoneMap, Table


@pytest.fixture
def loaded_table():
    """Three cohorts of localised values, some rows forgotten."""
    table = Table("t", ["a"])
    for epoch in range(3):
        table.insert_batch(
            epoch, {"a": np.arange(epoch * 100, epoch * 100 + 50)}
        )
    table.forget(np.arange(0, 150, 3), epoch=3)
    return table


class TestPlanSelection:
    def test_modes_tuple(self):
        assert PLAN_MODES == ("auto", "scan", "zonemap", "index", "cost")

    def test_invalid_mode_rejected(self, loaded_table):
        with pytest.raises(ConfigError):
            QueryPlanner(loaded_table, mode="turbo")

    def test_scan_mode_always_scans(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="scan", zone_map=CohortZoneMap(loaded_table)
        )
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "scan"
        assert plan.requested == "scan"

    def test_auto_prefers_index_over_zonemap(self, loaded_table):
        zone_map = CohortZoneMap(loaded_table)
        index = SortedIndex(loaded_table, "a")
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=zone_map, indexes=[index]
        )
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "index"
        assert plan.index is index

    def test_auto_uses_zonemap_without_index(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=CohortZoneMap(loaded_table)
        )
        assert planner.plan(RangePredicate("a", 0, 10)).mode == "zonemap"

    def test_auto_falls_back_to_scan_bare(self, loaded_table):
        planner = QueryPlanner(loaded_table, mode="auto")
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "scan"
        assert "no auxiliary structure" in plan.reason

    def test_point_predicate_gets_bounds(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=CohortZoneMap(loaded_table)
        )
        plan = planner.plan(PointPredicate("a", 42))
        assert plan.mode == "zonemap"
        assert (plan.low, plan.high) == (42, 43)

    def test_true_and_non_range_composites_scan(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="zonemap", zone_map=CohortZoneMap(loaded_table)
        )
        assert planner.plan(TruePredicate()).mode == "scan"
        # OR / NOT shapes carry no conjunctive bounds — still a scan.
        either = RangePredicate("a", 0, 10) | RangePredicate("a", 50, 60)
        assert planner.plan(either).mode == "scan"
        assert planner.plan(~RangePredicate("a", 0, 10)).mode == "scan"
        # An AND with a non-range child cannot compose either.
        mixed = AndPredicate(RangePredicate("a", 0, 10), TruePredicate())
        assert planner.plan(mixed).mode == "scan"

    def test_same_column_and_composes_to_one_range(self, loaded_table):
        """Same-column conjuncts intersect into a single range probe."""
        planner = QueryPlanner(
            loaded_table, mode="zonemap", zone_map=CohortZoneMap(loaded_table)
        )
        both = AndPredicate(
            RangePredicate("a", 0, 10), RangePredicate("a", 5, 20)
        )
        plan = planner.plan(both)
        assert plan.mode == "zonemap"
        assert (plan.low, plan.high) == (5, 10)
        active, missed, _ = planner.match(both, both.columns)
        values = loaded_table.values("a")
        mask = (values >= 5) & (values < 10)
        active_mask = loaded_table.active_mask()
        assert active.tolist() == np.flatnonzero(mask & active_mask).tolist()
        assert missed.tolist() == np.flatnonzero(mask & ~active_mask).tolist()
        # Disjoint same-column conjuncts prove the result empty.
        empty = AndPredicate(
            RangePredicate("a", 0, 10), RangePredicate("a", 20, 30)
        )
        plan = planner.plan(empty)
        assert plan.mode == "pruned"
        assert "empty" in plan.reason
        active, missed, execution = planner.match(empty, empty.columns)
        assert active.size == 0 and missed.size == 0
        assert execution.rows_considered == 0

    def test_multi_column_predicate_scan_fallback_contract(self):
        """Pinned contract (updated by the AND-composition satellite):
        multi-column AND predicates intersect per-column zone-map
        candidate ranges and scan only the intersection — every plan
        mode except the trust-nothing ``scan`` baseline prunes, and
        all of them return results bit-identical to the manual mask.

        The table is built so the columns disagree about which cohorts
        are hot: ``a`` is ascending, ``b`` descending, so each column
        alone admits two cohorts but their conjunction only one —
        exactly the case the old full-scan fallback paid 3× for.
        """
        table = Table("t2", ["a", "b"])
        for epoch in range(3):
            table.insert_batch(
                epoch,
                {
                    "a": np.arange(epoch * 100, epoch * 100 + 40),
                    "b": np.arange((2 - epoch) * 100, (2 - epoch) * 100 + 40),
                },
            )
        table.forget(np.arange(0, 120, 4), epoch=3)
        predicate = AndPredicate(
            RangePredicate("a", 100, 220), RangePredicate("b", 100, 220)
        )
        values = {"a": table.values("a"), "b": table.values("b")}
        mask = predicate.mask(values)
        active = table.active_mask()
        expected_active = np.flatnonzero(mask & active).tolist()
        expected_missed = np.flatnonzero(mask & ~active).tolist()
        assert expected_active and expected_missed  # both sides exercised
        zone_map = CohortZoneMap(table)
        index = SortedIndex(table, "a", merge_threshold=16)
        for mode in PLAN_MODES:
            planner = QueryPlanner(
                table, mode=mode, zone_map=zone_map, indexes=[index]
            )
            plan = planner.plan(predicate)
            assert plan.requested == mode
            got_active, got_missed, execution = planner.match(
                predicate, predicate.columns
            )
            assert got_active.tolist() == expected_active
            assert got_missed.tolist() == expected_missed
            if mode == "scan":
                assert plan.mode == "scan"
                assert execution.rows_considered == table.total_rows
                assert execution.rows_pruned == 0
            else:
                # Columns admit cohorts {1, 2} ('a') and {0, 1} ('b');
                # the intersection is cohort 1 alone: 40 of 120 rows.
                assert plan.mode == "zonemap", mode
                assert plan.and_bounds == (
                    ("a", 100, 220),
                    ("b", 100, 220),
                )
                assert execution.rows_considered == 40
                assert execution.rows_pruned == 80
        # Cost mode prices the intersection it is about to scan.
        plan = QueryPlanner(table, mode="cost", zone_map=zone_map).plan(
            predicate
        )
        assert plan.estimated_rows == 40.0

    def test_multi_column_and_without_zone_map_scans(self):
        """No zone map (or a partial one) still falls back to scan."""
        table = Table("t3", ["a", "b"])
        table.insert_batch(0, {"a": np.arange(20), "b": np.arange(20)})
        predicate = AndPredicate(
            RangePredicate("a", 0, 10), RangePredicate("b", 5, 15)
        )
        bare = QueryPlanner(table, mode="auto")
        plan = bare.plan(predicate)
        assert plan.mode == "scan"
        assert "no zone map covers every column" in plan.reason
        partial = QueryPlanner(
            table, mode="auto", zone_map=CohortZoneMap(table, columns=["a"])
        )
        assert partial.plan(predicate).mode == "scan"
        values = {"a": table.values("a"), "b": table.values("b")}
        expected = np.flatnonzero(predicate.mask(values)).tolist()
        active, missed, _ = partial.match(predicate, predicate.columns)
        assert active.tolist() == expected and missed.size == 0

    def test_forced_index_falls_back_through_chain(self, loaded_table):
        # No index, no zone map -> scan.
        planner = QueryPlanner(loaded_table, mode="index")
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "scan"
        assert "fell back" in plan.reason
        # No index but a zone map -> zonemap.
        planner = QueryPlanner(
            loaded_table, mode="index", zone_map=CohortZoneMap(loaded_table)
        )
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "zonemap"
        assert "fell back" in plan.reason

    def test_hash_index_only_serves_narrow_ranges(self, loaded_table):
        index = HashIndex(loaded_table, "a")
        planner = QueryPlanner(loaded_table, mode="index", indexes=[index])
        narrow = planner.plan(RangePredicate("a", 0, HASH_RANGE_LIMIT))
        assert narrow.mode == "index"
        wide = planner.plan(RangePredicate("a", 0, HASH_RANGE_LIMIT + 1))
        assert wide.mode == "scan"

    def test_dropped_index_is_skipped(self, loaded_table):
        index = SortedIndex(loaded_table, "a")
        planner = QueryPlanner(
            loaded_table,
            mode="auto",
            zone_map=CohortZoneMap(loaded_table),
            indexes=[index],
        )
        index.drop()
        assert planner.plan(RangePredicate("a", 0, 10)).mode == "zonemap"
        index.rebuild()
        assert planner.plan(RangePredicate("a", 0, 10)).mode == "index"

    def test_register_rejects_foreign_structures(self, loaded_table):
        other = Table("other", ["a"])
        other.insert_batch(0, {"a": [1]})
        with pytest.raises(QueryError):
            QueryPlanner(loaded_table).register_index(SortedIndex(other, "a"))
        with pytest.raises(QueryError):
            QueryPlanner(loaded_table, zone_map=CohortZoneMap(other))


class TestCostMode:
    def test_cost_prefers_zonemap_over_coarse_brin(self, loaded_table):
        """The headline cost-model win: auto's index>zonemap preference
        is wrong when the index's probe touches more rows than a pruned
        scan — cost mode prices both and flips the choice."""
        zone_map = CohortZoneMap(loaded_table)
        coarse = BlockRangeIndex(loaded_table, "a", block_size=150)
        auto = QueryPlanner(
            loaded_table, mode="auto", zone_map=zone_map, indexes=[coarse]
        )
        cost = QueryPlanner(
            loaded_table, mode="cost", zone_map=zone_map, indexes=[coarse]
        )
        predicate = RangePredicate("a", 0, 10)
        assert auto.plan(predicate).mode == "index"
        plan = cost.plan(predicate)
        assert plan.mode == "zonemap"
        assert plan.requested == "cost"
        assert plan.estimated_rows == 50  # one 50-row cohort
        assert "cost model" in plan.reason

    def test_cost_picks_selective_index(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(0, 50)})
        table.insert_batch(1, {"a": np.arange(100, 150)})
        table.forget(np.arange(0, 25), epoch=2)  # only cohort 0 rots
        zone_map = CohortZoneMap(table)
        index = SortedIndex(table, "a")
        planner = QueryPlanner(
            table, mode="cost", zone_map=zone_map, indexes=[index]
        )
        # Cohort 1 holds no forgotten rows, so the missed side is free
        # and the 10-entry probe beats the 50-row pruned scan.
        plan = planner.plan(RangePredicate("a", 100, 110))
        assert plan.mode == "index"
        assert plan.index is index
        # Back in cohort 0 the missed-side recovery scan makes the
        # pruned scan cheaper than index + recovery.
        assert planner.plan(RangePredicate("a", 0, 30)).mode == "zonemap"

    def test_cost_without_structures_scans(self, loaded_table):
        planner = QueryPlanner(loaded_table, mode="cost")
        plan = planner.plan(RangePredicate("a", 0, 10))
        assert plan.mode == "scan"
        assert plan.estimated_rows == loaded_table.total_rows

    def test_cost_skips_wide_hash_ranges(self, loaded_table):
        index = HashIndex(loaded_table, "a")
        planner = QueryPlanner(loaded_table, mode="cost", indexes=[index])
        wide = planner.plan(RangePredicate("a", 0, HASH_RANGE_LIMIT + 1))
        assert wide.mode == "scan"
        narrow = planner.plan(RangePredicate("a", 0, 4))
        assert narrow.mode == "index"

    def test_cost_results_match_scan(self, loaded_table):
        zone_map = CohortZoneMap(loaded_table)
        index = SortedIndex(loaded_table, "a", merge_threshold=16)
        executors = {
            "scan": QueryExecutor(loaded_table, record_access=False),
            "cost": QueryExecutor(
                loaded_table,
                record_access=False,
                planner=QueryPlanner(
                    loaded_table, mode="cost",
                    zone_map=zone_map, indexes=[index],
                ),
            ),
        }
        for low in (-10, 0, 60, 140, 200):
            query = RangeQuery(RangePredicate("a", low, low + 25))
            results = {
                name: executor.execute_range(query, epoch=4)
                for name, executor in executors.items()
            }
            assert (
                results["scan"].active_positions.tolist()
                == results["cost"].active_positions.tolist()
            )
            assert (
                results["scan"].missed_positions.tolist()
                == results["cost"].missed_positions.tolist()
            )


class TestHistogramStatistics:
    def test_estimate_is_histogram_sharpened(self):
        """Skewed data: uniformity mis-estimates, histograms track it."""
        table = Table("t", ["a"])
        # One cohort spanning [0, 1000] with 90% of its mass at 0-9.
        values = np.concatenate(
            [np.repeat(np.arange(10), 90), np.arange(0, 1000, 10)]
        )
        table.insert_batch(0, {"a": values})
        zone_map = CohortZoneMap(table)
        stats = TableHistogramStats(table, bins=100)
        uniform = QueryPlanner(table, mode="cost", zone_map=zone_map)
        hist = QueryPlanner(
            table, mode="cost", zone_map=zone_map, stats=stats
        )
        actual = int(np.count_nonzero((values >= 0) & (values < 10)))
        uniform_est = uniform.estimate("a", 0, 10).est_rows
        hist_est = hist.estimate("a", 0, 10).est_rows
        assert abs(hist_est - actual) < abs(uniform_est - actual)
        # Exact pruned-scan costs are shared — only match counts differ.
        assert (
            uniform.estimate("a", 0, 10).candidate_rows
            == hist.estimate("a", 0, 10).candidate_rows
        )

    def test_estimates_never_change_results(self, loaded_table):
        stats = TableHistogramStats(loaded_table)
        zone_map = CohortZoneMap(loaded_table)
        baseline = QueryExecutor(loaded_table, record_access=False)
        sharpened = QueryExecutor(
            loaded_table,
            record_access=False,
            planner=QueryPlanner(
                loaded_table, mode="cost", zone_map=zone_map, stats=stats
            ),
        )
        for low in (-10, 0, 60, 140, 200):
            query = RangeQuery(RangePredicate("a", low, low + 25))
            expected = baseline.execute_range(query, epoch=4)
            got = sharpened.execute_range(query, epoch=4)
            assert (
                got.active_positions.tolist()
                == expected.active_positions.tolist()
            )
            assert (
                got.missed_positions.tolist()
                == expected.missed_positions.tolist()
            )

    def test_foreign_stats_rejected(self, loaded_table):
        other = Table("other", ["a"])
        other.insert_batch(0, {"a": [1]})
        with pytest.raises(QueryError):
            QueryPlanner(loaded_table, stats=TableHistogramStats(other))

    def test_report_mentions_histograms(self, loaded_table):
        planner = QueryPlanner(
            loaded_table,
            mode="cost",
            zone_map=CohortZoneMap(loaded_table),
            stats=TableHistogramStats(loaded_table, bins=32),
        )
        assert "histograms over 1 column(s), 32 bins" in planner.plan_report()
        assert planner.stats()["histogram_stats"] == {
            "columns": ["a"],
            "bins": 32,
        }

    def test_estimate_without_zone_map_is_none(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="cost", stats=TableHistogramStats(loaded_table)
        )
        assert planner.estimate("a", 0, 10) is None


class TestValueBounds:
    def test_out_of_bounds_probe_is_pruned(self, loaded_table):
        planner = QueryPlanner(
            loaded_table,
            mode="auto",
            zone_map=CohortZoneMap(loaded_table),
            value_bounds={"a": (0, 300)},
        )
        plan = planner.plan(RangePredicate("a", 300, 400))
        assert plan.mode == "pruned"
        assert plan.estimated_rows == 0.0
        assert "value bounds" in plan.reason
        # Intersecting probes plan normally.
        assert planner.plan(RangePredicate("a", 250, 400)).mode == "zonemap"

    def test_open_ended_bounds(self, loaded_table):
        planner = QueryPlanner(
            loaded_table,
            mode="zonemap",
            zone_map=CohortZoneMap(loaded_table),
            value_bounds={"a": (100, None)},
        )
        assert planner.plan(RangePredicate("a", 0, 100)).mode == "pruned"
        assert planner.plan(RangePredicate("a", 500, 900)).mode != "pruned"

    def test_scan_mode_ignores_bounds(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="scan", value_bounds={"a": (0, 10)}
        )
        assert planner.plan(RangePredicate("a", 500, 600)).mode == "scan"

    def test_pruned_execution_answers_empty(self, loaded_table):
        planner = QueryPlanner(
            loaded_table,
            mode="auto",
            zone_map=CohortZoneMap(loaded_table),
            value_bounds={"a": (0, 300)},
        )
        executor = QueryExecutor(
            loaded_table, record_access=False, planner=planner
        )
        result = executor.execute_range(
            RangeQuery(RangePredicate("a", 500, 600)), epoch=4
        )
        assert (result.rf, result.mf) == (0, 0)
        execution = planner.last_execution
        assert execution.plan.mode == "pruned"
        assert execution.rows_considered == 0
        assert execution.rows_pruned == loaded_table.total_rows
        assert planner.stats()["paths"]["pruned"] == 1

    def test_invalid_bounds_rejected(self, loaded_table):
        with pytest.raises(QueryError):
            QueryPlanner(loaded_table, value_bounds={"a": (10, 10)})
        with pytest.raises(Exception):
            QueryPlanner(loaded_table, value_bounds={"missing": (0, 10)})


class TestExplain:
    def test_explain_accepts_queries_and_predicates(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=CohortZoneMap(loaded_table)
        )
        predicate = RangePredicate("a", 0, 10)
        assert planner.explain(predicate).mode == "zonemap"
        assert planner.explain(RangeQuery(predicate)).mode == "zonemap"
        agg = AggregateQuery(AggregateFunction.AVG, "a", predicate)
        assert planner.explain(agg).mode == "zonemap"
        whole = AggregateQuery(AggregateFunction.AVG, "a")
        assert planner.explain(whole).mode == "scan"
        with pytest.raises(QueryError):
            planner.explain("not a query")

    def test_describe_mentions_path_and_reason(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=CohortZoneMap(loaded_table)
        )
        text = planner.explain(RangePredicate("a", 0, 10)).describe()
        assert "zonemap" in text and "[0, 10)" in text


class TestPlanReport:
    def test_report_counts_paths_and_pruning(self, loaded_table):
        zone_map = CohortZoneMap(loaded_table)
        index = BlockRangeIndex(loaded_table, "a", block_size=32)
        planner = QueryPlanner(
            loaded_table, mode="auto", zone_map=zone_map, indexes=[index]
        )
        executor = QueryExecutor(
            loaded_table, record_access=False, planner=planner
        )
        executor.execute_range(RangeQuery(RangePredicate("a", 0, 10)), epoch=4)
        executor.execute_aggregate(
            AggregateQuery(AggregateFunction.AVG, "a"), epoch=4
        )
        stats = planner.stats()
        assert stats["queries_planned"] == 2
        assert stats["paths"]["index"] == 1
        assert stats["paths"]["scan"] == 1
        assert stats["rows_pruned"] > 0
        report = planner.plan_report()
        assert "2 queries planned" in report
        assert "BlockRangeIndex on 'a'" in report
        assert "last plan" in report

    def test_empty_report_renders(self, loaded_table):
        planner = QueryPlanner(loaded_table, mode="scan")
        report = planner.plan_report()
        assert "0 queries planned" in report
        assert "structures: none" in report


class TestExecutorIntegration:
    def test_executor_default_planner_is_scan(self, loaded_table):
        executor = QueryExecutor(loaded_table, record_access=False)
        assert executor.planner.mode == "scan"
        executor.execute_range(RangeQuery(RangePredicate("a", 0, 10)), epoch=4)
        assert executor.planner.last_execution.plan.mode == "scan"
        assert "scan" in executor.plan_report()

    def test_executor_rejects_foreign_planner(self, loaded_table):
        other = Table("other", ["a"])
        other.insert_batch(0, {"a": [1]})
        with pytest.raises(QueryError):
            QueryExecutor(loaded_table, planner=QueryPlanner(other))

    def test_zonemap_rows_considered_shrinks(self, loaded_table):
        planner = QueryPlanner(
            loaded_table, mode="zonemap", zone_map=CohortZoneMap(loaded_table)
        )
        executor = QueryExecutor(
            loaded_table, record_access=False, planner=planner
        )
        executor.execute_range(RangeQuery(RangePredicate("a", 0, 10)), epoch=4)
        execution = planner.last_execution
        assert execution.rows_considered == 50  # one cohort, not 150
        assert execution.rows_pruned == 100
