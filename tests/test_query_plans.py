"""Unit tests for the cross-table plan layer (repro.query.plans)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import QueryError, SchemaError
from repro.amnesia import FifoAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import (
    JoinNode,
    NodeResult,
    ShardedScanNode,
    TableScanNode,
    UnionNode,
    build_plan,
    execute_plan,
    explain_plan,
    parse_query_spec,
    render_executed,
)
from repro.storage import Catalog


@pytest.fixture
def catalog():
    cat = Catalog(plan="auto")
    for name, values in (("s1", [1, 2, 3, 5]), ("s2", [2, 3, 3, 8])):
        table = cat.create_table(name, ["a"])
        table.insert_batch(0, {"a": values[:2]})
        table.insert_batch(1, {"a": values[2:]})
    cat.get("s1").forget(np.array([1]), epoch=1)  # value 2 of s1
    return cat


class TestSpecParsing:
    def test_union_minimal(self):
        spec = parse_query_spec("union:s1,s2")
        assert (spec.kind, spec.tables) == ("union", ("s1", "s2"))
        assert spec.low is None and spec.high is None

    def test_join_full_options(self):
        spec = parse_query_spec("join:s1,s2:on=epoch,low=0,high=50")
        assert spec.on == "epoch"
        assert (spec.low, spec.high) == (0, 50)

    def test_render_roundtrip(self):
        for raw in (
            "union:s1,s2",
            "union:s1,s2,s3:low=1,high=9",
            "join:s1,s2:on=epoch",
            "join:a,b:on=value,low=-5,high=5",
            "join:s1,s2:on=value,block=512",
        ):
            spec = parse_query_spec(raw)
            assert parse_query_spec(spec.render()) == spec

    def test_block_option_reaches_the_join(self, catalog):
        node = build_plan(catalog, "join:s1,s2:on=value,block=2")
        assert node.block_size == 2
        assert "block=2" in node.describe()

    @pytest.mark.parametrize(
        "bad",
        [
            "scan:s1,s2",            # unknown kind
            "union:s1",              # one table
            "join:s1,s2:on=id",      # unknown key
            "union:s1,s2:on=value",  # on= outside a join
            "join:s1,s2:low=3",      # low without high
            "join:s1,s2:high=x,low=1",  # non-integer bound
            "union:s1,s2:low=9,high=0",  # reversed range
            "union:s1,s2:color=red",  # unknown option
            "union",                 # no tables section
            "union:s1,s2:a:b",       # too many sections
            "union:s1,s2:block=4",   # block outside a join
            "join:s1,s2:block=0",    # block below 1
            "join:s1,s2:block=x",    # non-integer block
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query_spec(bad)

    def test_build_plan_unknown_source(self, catalog):
        with pytest.raises(QueryError, match="unknown source"):
            build_plan(catalog, "union:s1,nope")


class TestScanNodes:
    def test_scan_emits_value_epoch_in_position_order(self, catalog):
        result = catalog.query(TableScanNode("s1"), epoch=2)
        assert result.columns == ("value", "epoch")
        assert result.rows.tolist() == [[1, 0], [2, 0], [3, 1], [5, 1]]
        assert result.forgotten.tolist() == [False, True, False, False]
        assert (result.rf, result.mf) == (3, 1)

    def test_bounded_scan(self, catalog):
        result = catalog.query(TableScanNode("s1", 2, 4), epoch=2)
        assert result.rows.tolist() == [[2, 0], [3, 1]]
        assert result.active_rows().tolist() == [[3, 1]]

    def test_bounds_validated(self):
        with pytest.raises(QueryError):
            TableScanNode("s1", 5, 1)
        with pytest.raises(QueryError):
            TableScanNode("s1", low=5)

    def test_empty_table_scans_empty(self):
        cat = Catalog()
        cat.create_table("empty", ["a"])
        result = cat.query(TableScanNode("empty"), epoch=0)
        assert result.oracle_count == 0 and result.precision == 1.0

    def test_column_override(self):
        cat = Catalog()
        table = cat.create_table("two", ["x", "y"])
        table.insert_batch(0, {"x": [1, 2], "y": [7, 9]})
        result = cat.query(TableScanNode("two", column="y"), epoch=1)
        assert result.column("value").tolist() == [7, 9]

    def test_record_access_flag(self, catalog):
        catalog.query(TableScanNode("s1"), epoch=2, record_access=False)
        assert catalog.get("s1").access_counts().sum() == 0
        catalog.query(TableScanNode("s1"), epoch=2)
        # Only the three active rows get their access bumped.
        assert catalog.get("s1").access_counts().tolist() == [1, 0, 1, 1]


class TestUnionNode:
    def test_concatenates_in_child_order(self, catalog):
        result = catalog.query("union:s2,s1", epoch=2)
        assert result.rows.tolist()[:4] == [[2, 0], [3, 0], [3, 1], [8, 1]]
        assert (result.rf, result.mf) == (7, 1)
        # Per-input accounting survives the union exactly.
        assert [(r.rf, r.mf) for r in result.inputs] == [(4, 0), (3, 1)]

    def test_needs_two_inputs(self):
        with pytest.raises(QueryError):
            UnionNode(TableScanNode("s1"))

    def test_rejects_mismatched_columns(self):
        join = JoinNode(TableScanNode("s1"), TableScanNode("s2"))
        with pytest.raises(QueryError, match="disagree on columns"):
            UnionNode(join, TableScanNode("s1"))

    def test_union_of_joins_allowed(self, catalog):
        union = UnionNode(
            JoinNode(TableScanNode("s1"), TableScanNode("s2")),
            JoinNode(TableScanNode("s2"), TableScanNode("s1")),
        )
        result = catalog.query(union, epoch=2)
        assert result.oracle_count == 6
        assert result.columns == ("l.value", "l.epoch", "r.value", "r.epoch")


class TestJoinNode:
    def test_value_join_matches_nested_loop(self, catalog):
        result = catalog.query("join:s1,s2:on=value", epoch=2)
        # s1 values [1,2,3,5] (2 forgotten), s2 values [2,3,3,8]:
        # pairs in (left, right) order: (2,2) (3,3) (3,3).
        assert result.rows.tolist() == [
            [2, 0, 2, 0],
            [3, 1, 3, 0],
            [3, 1, 3, 1],
        ]
        assert result.forgotten.tolist() == [True, False, False]
        assert (result.rf, result.mf) == (2, 1)
        assert result.precision == pytest.approx(2 / 3)

    def test_epoch_join(self, catalog):
        result = catalog.query("join:s1,s2:on=epoch", epoch=2)
        # Two rows per epoch on each side: 2 epochs * 2 * 2 pairs.
        assert result.oracle_count == 8
        lkeys = result.column("l.epoch")
        rkeys = result.column("r.epoch")
        assert (lkeys == rkeys).all()

    def test_output_order_independent_of_build_side(self, catalog):
        # s1 is smaller after bounds; force both asymmetries and check
        # the canonical order survives.
        wide = catalog.query(
            JoinNode(TableScanNode("s1"), TableScanNode("s2", 0, 100)),
            epoch=2,
        )
        narrow = catalog.query(
            JoinNode(TableScanNode("s1"), TableScanNode("s2", 2, 4)),
            epoch=2,
        )
        assert wide.rows.tolist()[: narrow.oracle_count] == narrow.rows.tolist()

    def test_forgotten_iff_any_side_forgotten(self, catalog):
        catalog.get("s2").forget(np.array([3]), epoch=2)  # value 8 (no match)
        result = catalog.query("join:s1,s2:on=value", epoch=3)
        assert result.forgotten.tolist() == [True, False, False]

    def test_bad_key_rejected(self):
        with pytest.raises(QueryError, match="join key"):
            JoinNode(TableScanNode("s1"), TableScanNode("s2"), on="serial")

    def test_three_way_chain_left_deep(self, catalog):
        table = catalog.create_table("s3", ["a"])
        table.insert_batch(0, {"a": [3, 5]})
        node = build_plan(catalog, "join:s1,s2,s3:on=value")
        result = catalog.query(node, epoch=2)
        # (3,3,3) twice (two 3s in s2) and nothing else: 5 has no s2 match.
        assert result.column("l.l.value").tolist() == [3, 3]
        assert result.column("r.value").tolist() == [3, 3]

    def test_node_reuse_rejected(self, catalog):
        scan = TableScanNode("s1")
        with pytest.raises(QueryError, match="appears twice"):
            catalog.query(JoinNode(scan, scan), epoch=2)


class TestBlockedJoin:
    def _skewed_catalog(self):
        """Two tables sharing one hot key — the cross-match stress case."""
        cat = Catalog(plan="auto")
        rng = np.random.default_rng(23)
        for name in ("s1", "s2"):
            table = cat.create_table(name, ["a"])
            values = rng.integers(0, 50, 120)
            values[rng.random(120) < 0.3] = 7  # hot key on both sides
            table.insert_batch(0, {"a": values})
            table.forget(np.flatnonzero(rng.random(120) < 0.2), epoch=1)
        return cat

    @pytest.mark.parametrize("block", (1, 3, 17, 1000))
    def test_blocked_join_bit_identical(self, block):
        catalog = self._skewed_catalog()
        full = catalog.query("join:s1,s2:on=value", epoch=1)
        blocked = catalog.query(f"join:s1,s2:on=value,block={block}", epoch=1)
        assert blocked.rows.tolist() == full.rows.tolist()
        assert blocked.forgotten.tolist() == full.forgotten.tolist()
        assert (blocked.rf, blocked.mf) == (full.rf, full.mf)

    def test_peak_pairs_bounded_by_block_times_build(self):
        catalog = self._skewed_catalog()
        full_node = build_plan(catalog, "join:s1,s2:on=value")
        full = catalog.query(full_node, epoch=1)
        assert full_node.peak_pairs == full.oracle_count  # one big batch
        block = 8
        blocked_node = build_plan(catalog, f"join:s1,s2:on=value,block={block}")
        catalog.query(blocked_node, epoch=1)
        build_rows = min(r.oracle_count for r in full.inputs)
        assert 0 < blocked_node.peak_pairs <= block * build_rows
        assert blocked_node.peak_pairs < full_node.peak_pairs

    def test_empty_probe_side(self, catalog):
        node = JoinNode(
            TableScanNode("s1", 90, 99),
            TableScanNode("s2"),
            block_size=4,
        )
        result = catalog.query(node, epoch=2)
        assert result.oracle_count == 0
        assert node.peak_pairs == 0

    def test_invalid_block_size_rejected(self):
        with pytest.raises(QueryError, match="block size"):
            JoinNode(TableScanNode("s1"), TableScanNode("s2"), block_size=0)


class TestJoinEstimates:
    def _zipf_catalog(self, stats):
        cat = Catalog(plan="cost", stats=stats)
        rng = np.random.default_rng(31)
        hot = cat.create_table("hot", ["a"])
        # 300 rows, ~80% mass in [0, 8) but spanning [0, 1000).
        values = np.minimum((rng.zipf(1.3, 300) - 1) * 4, 999)
        hot.insert_batch(0, {"a": values})
        # Smaller table over a narrow domain: per-table uniformity
        # *overestimates* its window mass while underestimating the hot
        # table's, so the two statistics sources rank the sides
        # oppositely.
        tail = cat.create_table("tail", ["a"])
        tail.insert_batch(0, {"a": rng.integers(0, 16, 120)})
        return cat

    def test_histogram_join_estimate_beats_max_heuristic(self):
        """On a skewed many-to-many key the FK-ish max-of-inputs guess
        collapses; the per-bin histogram product tracks the blow-up."""
        uniform = self._zipf_catalog("uniform")
        hist = self._zipf_catalog("hist")
        spec = "join:hot,hot2:on=value"
        for cat in (uniform, hist):
            rng = np.random.default_rng(31)
            twin = cat.create_table("hot2", ["a"])
            twin.insert_batch(
                0, {"a": np.minimum((rng.zipf(1.3, 300) - 1) * 4, 999)}
            )
        actual = uniform.query(spec, epoch=0).oracle_count
        uniform_est = build_plan(uniform, spec).estimate_rows(uniform)
        hist_est = build_plan(hist, spec).estimate_rows(hist)
        assert actual > 300  # genuinely many-to-many
        assert uniform_est <= 300  # max-of-inputs cannot see past that
        assert abs(hist_est - actual) < abs(uniform_est - actual)

    def test_build_side_prediction_uses_histograms(self):
        """EXPLAIN's build≈ prediction flips once histograms reveal the
        hot window is the *bigger* input — the plan choice uniformity
        got wrong (execution always decides by actual sizes)."""
        uniform = self._zipf_catalog("uniform")
        hist = self._zipf_catalog("hist")
        spec = "join:hot,tail:on=value,low=0,high=8"
        assert "build≈left" in uniform.explain_query(spec)
        assert "build≈right" in hist.explain_query(spec)
        # The histogram prediction matches what execution actually does.
        result = hist.query(spec, epoch=0)
        left, right = result.inputs
        assert right.oracle_count <= left.oracle_count


class TestShardedInputs:
    @pytest.fixture
    def sharded_catalog(self, catalog):
        store = PartitionedAmnesiaDatabase(
            "a",
            (0, 4, 8),
            total_budget=40,
            policy_factory=FifoAmnesia,
            plan="auto",
        )
        store.insert({"a": np.array([1, 3, 5, 9, -2])})
        catalog.register_sharded("sh", store)
        return catalog, store

    def test_scan_rows_merges_in_shard_order(self, sharded_catalog):
        catalog, store = sharded_catalog
        result = catalog.query(ShardedScanNode("sh"), epoch=2)
        # Shard 0 ([−inf, 4)) got 1, 3, −2 in insertion order; shard 1
        # ([4, +inf)) got 5, 9.
        assert result.column("value").tolist() == [1, 3, -2, 5, 9]

    def test_scan_records_access_at_caller_epoch(self, sharded_catalog):
        """Cross-table queries stamp sharded rows with the query epoch,
        exactly like plain-table leaves — recency-sensitive policies
        must not see the two source kinds differently."""
        catalog, store = sharded_catalog
        catalog.query("union:s1,sh", epoch=42)
        for partition in store.partitions:
            table = partition.db.table
            touched = table.access_counts() > 0
            assert touched.any()
            assert (table.last_access_epochs()[touched] == 42).all()
        table = catalog.get("s1")
        touched = table.access_counts() > 0
        assert (table.last_access_epochs()[touched] == 42).all()

    def test_sharded_join_input(self, sharded_catalog):
        catalog, _ = sharded_catalog
        result = catalog.query("join:s1,sh:on=value", epoch=2)
        assert result.column("l.value").tolist() == [1, 3, 5]
        assert result.forgotten.tolist() == [False, False, False]

    def test_estimate_scan_prunes_uncovered_shards(self, sharded_catalog):
        _, store = sharded_catalog
        full = store.estimate_scan()
        assert full == 5.0
        low_only = store.estimate_scan(100, 200)  # only the open edge shard
        assert low_only <= full

    def test_scan_rows_validates_bounds(self, sharded_catalog):
        _, store = sharded_catalog
        with pytest.raises(QueryError):
            store.scan_rows(5, 1)
        with pytest.raises(QueryError):
            store.scan_rows(low=5)

    def test_registry_guards(self, sharded_catalog):
        catalog, store = sharded_catalog
        with pytest.raises(SchemaError):
            catalog.register_sharded("s1", store)  # name taken by a table
        with pytest.raises(SchemaError):
            catalog.register_sharded("sh", store)  # already registered
        with pytest.raises(SchemaError):
            catalog.register_sharded("bad", object())  # no scan_rows()

        class ScanOnly:  # satisfies scan_rows but not explain/report
            def scan_rows(self, *args, **kwargs):
                return None

        with pytest.raises(SchemaError, match="lacks"):
            catalog.register_sharded("bad", ScanOnly())
        with pytest.raises(SchemaError):
            catalog.sharded("nope")
        # The shadow works both ways: a table cannot take a sharded
        # name either (created or externally registered) — otherwise
        # build_plan's tables-first resolution would silently read the
        # empty shadow table instead of the store.
        with pytest.raises(SchemaError):
            catalog.create_table("sh", ["a"])
        from repro.storage import Table

        with pytest.raises(SchemaError):
            catalog.register(Table("sh", ["a"]))
        assert catalog.has_sharded("sh") and catalog.sharded_names() == ["sh"]
        catalog.drop("sh")
        assert not catalog.has_sharded("sh")


class TestExplainAndReport:
    def test_explain_tree_shape(self, catalog):
        tree = explain_plan(
            JoinNode(
                UnionNode(TableScanNode("s1"), TableScanNode("s2")),
                TableScanNode("s1", 0, 4),
            ),
            catalog,
        )
        lines = tree.splitlines()
        assert lines[0].startswith("Join(on='value'")
        assert lines[1].startswith("├─ Union(2 inputs)")
        assert lines[2].startswith("│  ├─ TableScan('s1')")
        assert lines[4].startswith("└─ TableScan('s1' ∈ [0, 4))")
        assert "cost≈" in lines[0]

    def test_render_executed_carries_accounting(self, catalog):
        node = build_plan(catalog, "join:s1,s2:on=value")
        result = execute_plan(node, catalog, epoch=2)
        rendered = render_executed(node, result, catalog)
        assert "rf=2 mf=1 precision=0.667" in rendered.splitlines()[0]

    def test_catalog_plan_report_includes_cross_section(self, catalog):
        catalog.query("union:s1,s2", epoch=2)
        report = catalog.plan_report()
        assert "cross-table queries executed: 1" in report
        assert "Union(2 inputs" in report

    def test_plan_report_survives_dropped_source(self, catalog):
        """Regression: dropping a source referenced by the newest
        cross-table query must not crash plan_report — the node
        renders unbound (no estimates) instead."""
        catalog.query("join:s1,s2:on=value", epoch=2)
        catalog.drop("s2")
        report = catalog.plan_report()
        assert "rf=2 mf=1" in report
        assert "TableScan('s2')" in report

    def test_plan_report_retains_counts_not_rows(self, catalog):
        """The report cache keeps per-node counts, not the result's
        materialized row matrices."""
        catalog.query("join:s1,s2:on=value", epoch=2)
        node, summary = catalog._last_cross
        assert summary == (
            2, 1, 2 / 3, ((3, 1, 0.75, ()), (4, 0, 1.0, ()))
        )

    def test_explain_query_spec(self, catalog):
        tree = catalog.explain_query("union:s1,s2:low=0,high=3")
        assert "∈ [0, 3)" in tree

    def test_node_result_unknown_column(self, catalog):
        result = catalog.query("union:s1,s2", epoch=2)
        with pytest.raises(QueryError, match="no column"):
            result.column("serial")
        assert isinstance(result, NodeResult)
