"""Unit tests for the cross-table plan layer (repro.query.plans)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import QueryError, SchemaError
from repro.amnesia import FifoAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import (
    JoinNode,
    NodeResult,
    ShardedScanNode,
    TableScanNode,
    UnionNode,
    build_plan,
    execute_plan,
    explain_plan,
    parse_query_spec,
    render_executed,
)
from repro.storage import Catalog


@pytest.fixture
def catalog():
    cat = Catalog(plan="auto")
    for name, values in (("s1", [1, 2, 3, 5]), ("s2", [2, 3, 3, 8])):
        table = cat.create_table(name, ["a"])
        table.insert_batch(0, {"a": values[:2]})
        table.insert_batch(1, {"a": values[2:]})
    cat.get("s1").forget(np.array([1]), epoch=1)  # value 2 of s1
    return cat


class TestSpecParsing:
    def test_union_minimal(self):
        spec = parse_query_spec("union:s1,s2")
        assert (spec.kind, spec.tables) == ("union", ("s1", "s2"))
        assert spec.low is None and spec.high is None

    def test_join_full_options(self):
        spec = parse_query_spec("join:s1,s2:on=epoch,low=0,high=50")
        assert spec.on == "epoch"
        assert (spec.low, spec.high) == (0, 50)

    def test_render_roundtrip(self):
        for raw in (
            "union:s1,s2",
            "union:s1,s2,s3:low=1,high=9",
            "join:s1,s2:on=epoch",
            "join:a,b:on=value,low=-5,high=5",
            "join:s1,s2:on=value,block=512",
        ):
            spec = parse_query_spec(raw)
            assert parse_query_spec(spec.render()) == spec

    def test_block_option_reaches_the_join(self, catalog):
        node = build_plan(catalog, "join:s1,s2:on=value,block=2")
        assert node.block_size == 2
        assert "block=2" in node.describe()

    @pytest.mark.parametrize(
        "bad",
        [
            "scan:s1,s2",            # unknown kind
            "union:s1",              # one table
            "join:s1,s2:on=id",      # unknown key
            "union:s1,s2:on=value",  # on= outside a join
            "join:s1,s2:low=3",      # low without high
            "join:s1,s2:high=x,low=1",  # non-integer bound
            "union:s1,s2:low=9,high=0",  # reversed range
            "union:s1,s2:color=red",  # unknown option
            "union",                 # no tables section
            "union:s1,s2:a:b",       # too many sections
            "union:s1,s2:block=4",   # block outside a join
            "join:s1,s2:block=0",    # block below 1
            "join:s1,s2:block=x",    # non-integer block
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query_spec(bad)

    def test_build_plan_unknown_source(self, catalog):
        with pytest.raises(QueryError, match="unknown source"):
            build_plan(catalog, "union:s1,nope")


class TestScanNodes:
    def test_scan_emits_value_epoch_in_position_order(self, catalog):
        result = catalog.query(TableScanNode("s1"), epoch=2)
        assert result.columns == ("value", "epoch")
        assert result.rows.tolist() == [[1, 0], [2, 0], [3, 1], [5, 1]]
        assert result.forgotten.tolist() == [False, True, False, False]
        assert (result.rf, result.mf) == (3, 1)

    def test_bounded_scan(self, catalog):
        result = catalog.query(TableScanNode("s1", 2, 4), epoch=2)
        assert result.rows.tolist() == [[2, 0], [3, 1]]
        assert result.active_rows().tolist() == [[3, 1]]

    def test_bounds_validated(self):
        with pytest.raises(QueryError):
            TableScanNode("s1", 5, 1)
        with pytest.raises(QueryError):
            TableScanNode("s1", low=5)

    def test_empty_table_scans_empty(self):
        cat = Catalog()
        cat.create_table("empty", ["a"])
        result = cat.query(TableScanNode("empty"), epoch=0)
        assert result.oracle_count == 0 and result.precision == 1.0

    def test_column_override(self):
        cat = Catalog()
        table = cat.create_table("two", ["x", "y"])
        table.insert_batch(0, {"x": [1, 2], "y": [7, 9]})
        result = cat.query(TableScanNode("two", column="y"), epoch=1)
        assert result.column("value").tolist() == [7, 9]

    def test_record_access_flag(self, catalog):
        catalog.query(TableScanNode("s1"), epoch=2, record_access=False)
        assert catalog.get("s1").access_counts().sum() == 0
        catalog.query(TableScanNode("s1"), epoch=2)
        # Only the three active rows get their access bumped.
        assert catalog.get("s1").access_counts().tolist() == [1, 0, 1, 1]


class TestUnionNode:
    def test_concatenates_in_child_order(self, catalog):
        result = catalog.query("union:s2,s1", epoch=2)
        assert result.rows.tolist()[:4] == [[2, 0], [3, 0], [3, 1], [8, 1]]
        assert (result.rf, result.mf) == (7, 1)
        # Per-input accounting survives the union exactly.
        assert [(r.rf, r.mf) for r in result.inputs] == [(4, 0), (3, 1)]

    def test_needs_two_inputs(self):
        with pytest.raises(QueryError):
            UnionNode(TableScanNode("s1"))

    def test_rejects_mismatched_columns(self):
        join = JoinNode(TableScanNode("s1"), TableScanNode("s2"))
        with pytest.raises(QueryError, match="disagree on columns"):
            UnionNode(join, TableScanNode("s1"))

    def test_union_of_joins_allowed(self, catalog):
        union = UnionNode(
            JoinNode(TableScanNode("s1"), TableScanNode("s2")),
            JoinNode(TableScanNode("s2"), TableScanNode("s1")),
        )
        result = catalog.query(union, epoch=2)
        assert result.oracle_count == 6
        assert result.columns == ("l.value", "l.epoch", "r.value", "r.epoch")


class TestJoinNode:
    def test_value_join_matches_nested_loop(self, catalog):
        result = catalog.query("join:s1,s2:on=value", epoch=2)
        # s1 values [1,2,3,5] (2 forgotten), s2 values [2,3,3,8]:
        # pairs in (left, right) order: (2,2) (3,3) (3,3).
        assert result.rows.tolist() == [
            [2, 0, 2, 0],
            [3, 1, 3, 0],
            [3, 1, 3, 1],
        ]
        assert result.forgotten.tolist() == [True, False, False]
        assert (result.rf, result.mf) == (2, 1)
        assert result.precision == pytest.approx(2 / 3)

    def test_epoch_join(self, catalog):
        result = catalog.query("join:s1,s2:on=epoch", epoch=2)
        # Two rows per epoch on each side: 2 epochs * 2 * 2 pairs.
        assert result.oracle_count == 8
        lkeys = result.column("l.epoch")
        rkeys = result.column("r.epoch")
        assert (lkeys == rkeys).all()

    def test_output_order_independent_of_build_side(self, catalog):
        # s1 is smaller after bounds; force both asymmetries and check
        # the canonical order survives.
        wide = catalog.query(
            JoinNode(TableScanNode("s1"), TableScanNode("s2", 0, 100)),
            epoch=2,
        )
        narrow = catalog.query(
            JoinNode(TableScanNode("s1"), TableScanNode("s2", 2, 4)),
            epoch=2,
        )
        assert wide.rows.tolist()[: narrow.oracle_count] == narrow.rows.tolist()

    def test_forgotten_iff_any_side_forgotten(self, catalog):
        catalog.get("s2").forget(np.array([3]), epoch=2)  # value 8 (no match)
        result = catalog.query("join:s1,s2:on=value", epoch=3)
        assert result.forgotten.tolist() == [True, False, False]

    def test_bad_key_rejected(self):
        with pytest.raises(QueryError, match="join key"):
            JoinNode(TableScanNode("s1"), TableScanNode("s2"), on="serial")

    def test_three_way_chain_left_deep(self, catalog):
        table = catalog.create_table("s3", ["a"])
        table.insert_batch(0, {"a": [3, 5]})
        node = build_plan(catalog, "join:s1,s2,s3:on=value")
        result = catalog.query(node, epoch=2)
        # (3,3,3) twice (two 3s in s2) and nothing else: 5 has no s2 match.
        assert result.column("l.l.value").tolist() == [3, 3]
        assert result.column("r.value").tolist() == [3, 3]

    def test_node_reuse_rejected(self, catalog):
        scan = TableScanNode("s1")
        with pytest.raises(QueryError, match="appears twice"):
            catalog.query(JoinNode(scan, scan), epoch=2)


class TestBlockedJoin:
    def _skewed_catalog(self):
        """Two tables sharing one hot key — the cross-match stress case."""
        cat = Catalog(plan="auto")
        rng = np.random.default_rng(23)
        for name in ("s1", "s2"):
            table = cat.create_table(name, ["a"])
            values = rng.integers(0, 50, 120)
            values[rng.random(120) < 0.3] = 7  # hot key on both sides
            table.insert_batch(0, {"a": values})
            table.forget(np.flatnonzero(rng.random(120) < 0.2), epoch=1)
        return cat

    @pytest.mark.parametrize("block", (1, 3, 17, 1000))
    def test_blocked_join_bit_identical(self, block):
        catalog = self._skewed_catalog()
        full = catalog.query("join:s1,s2:on=value", epoch=1)
        blocked = catalog.query(f"join:s1,s2:on=value,block={block}", epoch=1)
        assert blocked.rows.tolist() == full.rows.tolist()
        assert blocked.forgotten.tolist() == full.forgotten.tolist()
        assert (blocked.rf, blocked.mf) == (full.rf, full.mf)

    def test_peak_pairs_bounded_by_block_times_build(self):
        catalog = self._skewed_catalog()
        full_node = build_plan(catalog, "join:s1,s2:on=value")
        full = catalog.query(full_node, epoch=1)
        assert full_node.peak_pairs == full.oracle_count  # one big batch
        block = 8
        blocked_node = build_plan(catalog, f"join:s1,s2:on=value,block={block}")
        catalog.query(blocked_node, epoch=1)
        build_rows = min(r.oracle_count for r in full.inputs)
        assert 0 < blocked_node.peak_pairs <= block * build_rows
        assert blocked_node.peak_pairs < full_node.peak_pairs

    def test_empty_probe_side(self, catalog):
        node = JoinNode(
            TableScanNode("s1", 90, 99),
            TableScanNode("s2"),
            block_size=4,
        )
        result = catalog.query(node, epoch=2)
        assert result.oracle_count == 0
        assert node.peak_pairs == 0

    def test_invalid_block_size_rejected(self):
        with pytest.raises(QueryError, match="block size"):
            JoinNode(TableScanNode("s1"), TableScanNode("s2"), block_size=0)


class TestJoinEstimates:
    def _zipf_catalog(self, stats):
        cat = Catalog(plan="cost", stats=stats)
        rng = np.random.default_rng(31)
        hot = cat.create_table("hot", ["a"])
        # 300 rows, ~80% mass in [0, 8) but spanning [0, 1000).
        values = np.minimum((rng.zipf(1.3, 300) - 1) * 4, 999)
        hot.insert_batch(0, {"a": values})
        # Smaller table over a narrow domain: per-table uniformity
        # *overestimates* its window mass while underestimating the hot
        # table's, so the two statistics sources rank the sides
        # oppositely.
        tail = cat.create_table("tail", ["a"])
        tail.insert_batch(0, {"a": rng.integers(0, 16, 120)})
        return cat

    def test_histogram_join_estimate_beats_max_heuristic(self):
        """On a skewed many-to-many key the FK-ish max-of-inputs guess
        collapses; the per-bin histogram product tracks the blow-up."""
        uniform = self._zipf_catalog("uniform")
        hist = self._zipf_catalog("hist")
        spec = "join:hot,hot2:on=value"
        for cat in (uniform, hist):
            rng = np.random.default_rng(31)
            twin = cat.create_table("hot2", ["a"])
            twin.insert_batch(
                0, {"a": np.minimum((rng.zipf(1.3, 300) - 1) * 4, 999)}
            )
        actual = uniform.query(spec, epoch=0).oracle_count
        uniform_est = build_plan(uniform, spec).estimate_rows(uniform)
        hist_est = build_plan(hist, spec).estimate_rows(hist)
        assert actual > 300  # genuinely many-to-many
        assert uniform_est <= 300  # max-of-inputs cannot see past that
        assert abs(hist_est - actual) < abs(uniform_est - actual)

    def test_build_side_prediction_uses_histograms(self):
        """EXPLAIN's build≈ prediction flips once histograms reveal the
        hot window is the *bigger* input — the plan choice uniformity
        got wrong (execution always decides by actual sizes)."""
        uniform = self._zipf_catalog("uniform")
        hist = self._zipf_catalog("hist")
        spec = "join:hot,tail:on=value,low=0,high=8"
        assert "build≈left" in uniform.explain_query(spec)
        assert "build≈right" in hist.explain_query(spec)
        # The histogram prediction matches what execution actually does.
        result = hist.query(spec, epoch=0)
        left, right = result.inputs
        assert right.oracle_count <= left.oracle_count


class TestShardedInputs:
    @pytest.fixture
    def sharded_catalog(self, catalog):
        store = PartitionedAmnesiaDatabase(
            "a",
            (0, 4, 8),
            total_budget=40,
            policy_factory=FifoAmnesia,
            plan="auto",
        )
        store.insert({"a": np.array([1, 3, 5, 9, -2])})
        catalog.register_sharded("sh", store)
        return catalog, store

    def test_scan_rows_merges_in_shard_order(self, sharded_catalog):
        catalog, store = sharded_catalog
        result = catalog.query(ShardedScanNode("sh"), epoch=2)
        # Shard 0 ([−inf, 4)) got 1, 3, −2 in insertion order; shard 1
        # ([4, +inf)) got 5, 9.
        assert result.column("value").tolist() == [1, 3, -2, 5, 9]

    def test_scan_records_access_at_caller_epoch(self, sharded_catalog):
        """Cross-table queries stamp sharded rows with the query epoch,
        exactly like plain-table leaves — recency-sensitive policies
        must not see the two source kinds differently."""
        catalog, store = sharded_catalog
        catalog.query("union:s1,sh", epoch=42)
        for partition in store.partitions:
            table = partition.db.table
            touched = table.access_counts() > 0
            assert touched.any()
            assert (table.last_access_epochs()[touched] == 42).all()
        table = catalog.get("s1")
        touched = table.access_counts() > 0
        assert (table.last_access_epochs()[touched] == 42).all()

    def test_sharded_join_input(self, sharded_catalog):
        catalog, _ = sharded_catalog
        result = catalog.query("join:s1,sh:on=value", epoch=2)
        assert result.column("l.value").tolist() == [1, 3, 5]
        assert result.forgotten.tolist() == [False, False, False]

    def test_estimate_scan_prunes_uncovered_shards(self, sharded_catalog):
        _, store = sharded_catalog
        full = store.estimate_scan()
        assert full == 5.0
        low_only = store.estimate_scan(100, 200)  # only the open edge shard
        assert low_only <= full

    def test_scan_rows_validates_bounds(self, sharded_catalog):
        _, store = sharded_catalog
        with pytest.raises(QueryError):
            store.scan_rows(5, 1)
        with pytest.raises(QueryError):
            store.scan_rows(low=5)

    def test_registry_guards(self, sharded_catalog):
        catalog, store = sharded_catalog
        with pytest.raises(SchemaError):
            catalog.register_sharded("s1", store)  # name taken by a table
        with pytest.raises(SchemaError):
            catalog.register_sharded("sh", store)  # already registered
        with pytest.raises(SchemaError):
            catalog.register_sharded("bad", object())  # no scan_rows()

        class ScanOnly:  # satisfies scan_rows but not explain/report
            def scan_rows(self, *args, **kwargs):
                return None

        with pytest.raises(SchemaError, match="lacks"):
            catalog.register_sharded("bad", ScanOnly())
        with pytest.raises(SchemaError):
            catalog.sharded("nope")
        # The shadow works both ways: a table cannot take a sharded
        # name either (created or externally registered) — otherwise
        # build_plan's tables-first resolution would silently read the
        # empty shadow table instead of the store.
        with pytest.raises(SchemaError):
            catalog.create_table("sh", ["a"])
        from repro.storage import Table

        with pytest.raises(SchemaError):
            catalog.register(Table("sh", ["a"]))
        assert catalog.has_sharded("sh") and catalog.sharded_names() == ["sh"]
        catalog.drop("sh")
        assert not catalog.has_sharded("sh")


class TestExplainAndReport:
    def test_explain_tree_shape(self, catalog):
        tree = explain_plan(
            JoinNode(
                UnionNode(TableScanNode("s1"), TableScanNode("s2")),
                TableScanNode("s1", 0, 4),
            ),
            catalog,
        )
        lines = tree.splitlines()
        assert lines[0].startswith("Join(on='value'")
        assert lines[1].startswith("├─ Union(2 inputs)")
        assert lines[2].startswith("│  ├─ TableScan('s1')")
        assert lines[4].startswith("└─ TableScan('s1' ∈ [0, 4))")
        assert "cost≈" in lines[0]

    def test_render_executed_carries_accounting(self, catalog):
        node = build_plan(catalog, "join:s1,s2:on=value")
        result = execute_plan(node, catalog, epoch=2)
        rendered = render_executed(node, result, catalog)
        assert "rf=2 mf=1 precision=0.667" in rendered.splitlines()[0]

    def test_catalog_plan_report_includes_cross_section(self, catalog):
        catalog.query("union:s1,s2", epoch=2)
        report = catalog.plan_report()
        assert "cross-table queries executed: 1" in report
        assert "Union(2 inputs" in report

    def test_plan_report_survives_dropped_source(self, catalog):
        """Regression: dropping a source referenced by the newest
        cross-table query must not crash plan_report — the node
        renders unbound (no estimates) instead."""
        catalog.query("join:s1,s2:on=value", epoch=2)
        catalog.drop("s2")
        report = catalog.plan_report()
        assert "rf=2 mf=1" in report
        assert "TableScan('s2')" in report

    def test_plan_report_retains_counts_not_rows(self, catalog):
        """The report cache keeps per-node counts, not the result's
        materialized row matrices."""
        catalog.query("join:s1,s2:on=value", epoch=2)
        node, summary = catalog._last_cross
        assert summary == (
            2, 1, 2 / 3, ((3, 1, 0.75, ()), (4, 0, 1.0, ()))
        )

    def test_explain_query_spec(self, catalog):
        tree = catalog.explain_query("union:s1,s2:low=0,high=3")
        assert "∈ [0, 3)" in tree

    def test_node_result_unknown_column(self, catalog):
        result = catalog.query("union:s1,s2", epoch=2)
        with pytest.raises(QueryError, match="no column"):
            result.column("serial")
        assert isinstance(result, NodeResult)


class TestStreamingBatches:
    """The batch-iterator contract: ordering, flags, snapshot, bounds."""

    def _materialized(self, catalog, node_factory, epoch=2):
        result = catalog.query(node_factory(), epoch=epoch, record_access=False)
        return result.rows, result.forgotten

    def _streamed(self, catalog, node, batch_size, epoch=2):
        pieces = list(
            node.batches(catalog, epoch, batch_size, record_access=False)
        )
        if not pieces:
            return np.empty((0, 0)), np.empty(0, dtype=bool), pieces
        return (
            np.concatenate([r for r, _ in pieces]),
            np.concatenate([f for _, f in pieces]),
            pieces,
        )

    @pytest.mark.parametrize("batch_size", (1, 2, 3, 1000))
    def test_union_batches_bit_identical(self, catalog, batch_size):
        rows, flags = self._materialized(
            catalog, lambda: UnionNode(TableScanNode("s1"), TableScanNode("s2"))
        )
        node = UnionNode(TableScanNode("s1"), TableScanNode("s2"))
        srows, sflags, pieces = self._streamed(catalog, node, batch_size)
        assert srows.tolist() == rows.tolist()
        assert sflags.tolist() == flags.tolist()
        # Every batch except the last is exactly batch_size rows.
        assert all(r.shape[0] == batch_size for r, _ in pieces[:-1])
        assert pieces[-1][0].shape[0] <= batch_size

    @pytest.mark.parametrize("batch_size", (1, 2, 5, 1000))
    def test_join_batches_bit_identical(self, catalog, batch_size):
        rows, flags = self._materialized(
            catalog,
            lambda: JoinNode(
                TableScanNode("s1"), TableScanNode("s2"), on="value"
            ),
        )
        node = JoinNode(TableScanNode("s1"), TableScanNode("s2"), on="value")
        srows, sflags, _ = self._streamed(catalog, node, batch_size)
        assert srows.tolist() == rows.tolist()
        assert sflags.tolist() == flags.tolist()
        assert node.last_strategy == f"streamed-hash(batch={batch_size})"

    def test_batch_larger_than_input_single_batch(self, catalog):
        node = TableScanNode("s1")
        pieces = list(node.batches(catalog, 2, 10_000, record_access=False))
        assert len(pieces) == 1
        assert pieces[0][0].shape[0] == 4

    def test_empty_inputs_yield_no_batches(self):
        cat = Catalog(plan="auto")
        for name in ("e1", "e2"):
            cat.create_table(name, ["a"])
        union = UnionNode(TableScanNode("e1"), TableScanNode("e2"))
        assert list(union.batches(cat, 0, 4)) == []
        join = JoinNode(TableScanNode("e1"), TableScanNode("e2"))
        assert list(join.batches(cat, 0, 4)) == []
        assert join.peak_pairs == 0

    def test_empty_build_side_streams_empty(self, catalog):
        node = JoinNode(
            TableScanNode("s1"), TableScanNode("s2", 90, 99), on="value"
        )
        assert list(node.batches(catalog, 2, 3, record_access=False)) == []

    def test_batch_boundary_on_forgotten_run(self):
        """A forgotten run straddling a batch boundary keeps its flags
        aligned row-for-row on both sides of the cut."""
        cat = Catalog(plan="auto")
        table = cat.create_table("t", ["a"])
        table.insert_batch(0, {"a": list(range(10))})
        table.forget(np.array([3, 4, 5, 6]), epoch=1)  # run crosses 5
        pieces = list(
            TableScanNode("t").batches(cat, 1, 5, record_access=False)
        )
        assert [f.tolist() for _, f in pieces] == [
            [False, False, False, True, True],
            [True, True, False, False, False],
        ]

    def test_stream_holds_one_epoch_snapshot(self, catalog):
        """Forgetting that lands after the stream opens is invisible to
        it — the snapshot is per batch stream, not per batch."""
        before_rows, before_flags = self._materialized(
            catalog, lambda: TableScanNode("s1")
        )
        node = TableScanNode("s1")
        stream = node.batches(catalog, 2, 1, record_access=False)
        first = next(stream)  # stream is open (leaves already scanned)
        catalog.get("s1").forget(np.array([2]), epoch=2)
        rest = list(stream)
        srows = np.concatenate([first[0]] + [r for r, _ in rest])
        sflags = np.concatenate([first[1]] + [f for _, f in rest])
        assert srows.tolist() == before_rows.tolist()
        assert sflags.tolist() == before_flags.tolist()
        # A *new* stream sees the new epoch's forgetting.
        _, after_flags, _ = self._streamed(
            catalog, TableScanNode("s1"), 2, epoch=2
        )
        assert after_flags.tolist() != before_flags.tolist()

    def test_sharded_stream_snapshot_under_concurrent_ingest(self):
        """A sharded leaf's chunks are taken under one read-gate
        acquisition: ingest applied mid-drain cannot tear the stream."""
        store = PartitionedAmnesiaDatabase(
            "a",
            (0, 4, 8),
            total_budget=40,
            policy_factory=FifoAmnesia,
            plan="auto",
        )
        store.insert({"a": np.array([1, 3, 5, 9, -2])})
        cat = Catalog(plan="auto")
        cat.register_sharded("sh", store)
        node = ShardedScanNode("sh")
        stream = node.batches(cat, 1, 2, record_access=False)
        first = next(stream)
        store.insert({"a": np.array([2, 6])})  # lands after the snapshot
        rest = list(stream)
        values = np.concatenate([first[0]] + [r for r, _ in rest])[:, 0]
        assert values.tolist() == [1, 3, -2, 5, 9]
        store.close()

    def test_invalid_batch_size_rejected(self, catalog):
        with pytest.raises(QueryError, match="batch size"):
            list(TableScanNode("s1").batches(catalog, 2, 0))

    def test_none_resolves_to_process_default(self, catalog):
        from repro.core.config import default_batch_size, set_default_batch_size

        before = default_batch_size()
        try:
            set_default_batch_size(3)
            pieces = list(
                UnionNode(TableScanNode("s1"), TableScanNode("s2")).batches(
                    catalog, 2, record_access=False
                )
            )
            assert [r.shape[0] for r, _ in pieces] == [3, 3, 2]
        finally:
            set_default_batch_size(before)


class TestStreamedAggregates:
    def _exact_over(self, result):
        from repro.stats import ExactMoments

        values = result.rows[:, 0]
        return (
            ExactMoments.of(values[~result.forgotten]),
            ExactMoments.of(values[result.forgotten]),
        )

    def test_agg_spec_parse_and_render(self):
        spec = parse_query_spec("join:s1,s2:on=value,agg=value")
        assert spec.agg == "value"
        assert parse_query_spec(spec.render()) == spec
        assert parse_query_spec("union:s1,s2:agg=epoch").agg == "epoch"
        with pytest.raises(QueryError, match="agg"):
            parse_query_spec("union:s1,s2:agg=")

    def test_aggregate_over_join_equals_materialized(self, catalog):
        mat = catalog.query("join:s1,s2:on=value", epoch=2)
        exp_active, exp_missed = self._exact_over(mat)
        for batch_size in (1, 3, 1000):
            agg = catalog.query(
                "join:s1,s2:on=value,agg=value",
                epoch=2,
                record_access=False,
                batch_size=batch_size,
            )
            assert agg.active == exp_active
            assert agg.missed == exp_missed
            assert (agg.rf, agg.mf, agg.precision) == (
                mat.rf, mat.mf, mat.precision,
            )

    def test_union_pushdown_equals_materialized(self, catalog):
        mat = catalog.query("union:s1,s2", epoch=2)
        exp_active, exp_missed = self._exact_over(mat)
        agg = catalog.query(
            "union:s1,s2:agg=value", epoch=2, record_access=False, batch_size=2
        )
        assert agg.strategy == "pushdown-union(batch=2)"
        assert agg.active == exp_active and agg.missed == exp_missed
        # Per-input accounting survives the pushdown.
        assert [(v.rf, v.mf) for v in agg.inputs[0].inputs] == [
            (r.rf, r.mf) for r in mat.inputs
        ]

    def test_join_never_materializes_pair_set(self):
        """The tentpole bound: peak pairs ≤ batch_size × build rows,
        strictly below the full pair matrix on skewed keys."""
        cat = Catalog(plan="auto")
        rng = np.random.default_rng(7)
        for name in ("s1", "s2"):
            t = cat.create_table(name, ["a"])
            values = rng.integers(0, 30, 400)
            values[rng.random(400) < 0.4] = 5  # hot key both sides
            t.insert_batch(0, {"a": values})
        node = build_plan(cat, "join:s1,s2:on=value")
        mat = cat.query(node, epoch=0)
        assert node.peak_pairs == mat.oracle_count
        batch = 16
        agg_node = build_plan(cat, "join:s1,s2:on=value,agg=value")
        cat.query(agg_node, epoch=0, record_access=False, batch_size=batch)
        join = agg_node.children[0]
        build_rows = min(r.oracle_count for r in mat.inputs)
        assert 0 < join.peak_pairs <= batch * build_rows
        assert join.peak_pairs * 10 <= mat.oracle_count
        assert join.peak_batch_bytes < mat.oracle_count * (8 * 4 + 1)

    def test_sort_merge_chosen_on_ordered_inputs_and_identical(self, catalog):
        from repro.indexes import SortedIndex

        mat = catalog.query("join:s1,s2:on=value", epoch=2)
        exp_active, exp_missed = self._exact_over(mat)
        for name in ("s1", "s2"):
            catalog.create_index(name, "a", SortedIndex)
        node = build_plan(catalog, "join:s1,s2:on=value")
        assert node.join_strategy(catalog) == "merge"
        for batch_size in (1, 2, 1000):
            agg = catalog.query(
                "join:s1,s2:on=value,agg=value",
                epoch=2,
                record_access=False,
                batch_size=batch_size,
            )
            assert agg.strategy == f"sort-merge(batch={batch_size})"
            assert agg.active == exp_active
            assert agg.missed == exp_missed
        # Epoch keys carry no order signal: hash stays the strategy.
        epoch_join = build_plan(catalog, "join:s1,s2:on=epoch")
        assert epoch_join.join_strategy(catalog) == "hash"

    def test_sort_merge_slabs_bound_hot_key_groups(self):
        """One scorching key: the merge path emits its cross product in
        slabs, so peak pairs stays ≤ batch_size even within a group."""
        from repro.indexes import SortedIndex
        from repro.query import AggregateNode

        cat = Catalog(plan="auto")
        for name in ("s1", "s2"):
            t = cat.create_table(name, ["a"])
            t.insert_batch(0, {"a": [7] * 40})  # 1600 pairs, one key
            cat.create_index(name, "a", SortedIndex)
        node = build_plan(cat, "join:s1,s2:on=value")
        assert node.join_strategy(cat) == "merge"
        agg = cat.query(
            AggregateNode(node), epoch=0, record_access=False, batch_size=32
        )
        assert agg.rf == 1600
        assert node.peak_pairs == 32

    def test_agg_column_resolution(self, catalog):
        from repro.query import AggregateNode

        join = build_plan(catalog, "join:s1,s2:on=value")
        assert AggregateNode(join, "value").on == "l.value"  # leftmost
        assert AggregateNode(join, "r.epoch").on == "r.epoch"
        assert AggregateNode(join).on == "l.value"  # default: first column
        with pytest.raises(QueryError, match="aggregate column"):
            AggregateNode(join, "nope")

    def test_aggregate_must_be_root(self, catalog):
        from repro.query import AggregateNode

        inner = AggregateNode(TableScanNode("s1"))
        outer = AggregateNode(JoinNode(inner, TableScanNode("s2"), on="value"))
        with pytest.raises(QueryError, match="nest|root"):
            outer.validate(catalog)
        with pytest.raises(QueryError, match="batches"):
            AggregateNode(TableScanNode("s1")).batches(catalog, 0)

    def test_empty_aggregate(self):
        cat = Catalog(plan="auto")
        for name in ("e1", "e2"):
            cat.create_table(name, ["a"])
        agg = cat.query("union:e1,e2:agg=value", epoch=0)
        assert (agg.rf, agg.mf, agg.precision) == (0, 0, 1.0)
        assert agg.oracle_count == 0


class TestNestedJoinReport:
    def test_two_level_join_reports_peak_for_every_join(self, catalog):
        """plan_report carries the execution footprint — strategy,
        peak_pairs, peak_batch_bytes — for *nested* join trees, one
        annotation per join node, not just the root."""
        table = catalog.create_table("s3", ["a"])
        table.insert_batch(0, {"a": [2, 3, 9]})
        node = build_plan(catalog, "join:s1,s2,s3:on=value")
        catalog.query(node, epoch=2)
        report = catalog.plan_report()
        assert report.count("peak_pairs=") == 2
        assert report.count("peak_batch_bytes=") == 2
        assert report.count("[materialized-hash:") == 2
        inner, outer = node.children[0], node
        assert f"peak_pairs={inner.peak_pairs}" in report
        assert f"peak_pairs={outer.peak_pairs}" in report

    def test_streamed_strategy_lands_in_report(self, catalog):
        catalog.query(
            "join:s1,s2:on=value,agg=value",
            epoch=2,
            batch_size=3,
        )
        report = catalog.plan_report()
        assert "Aggregate(on='l.value')" in report
        assert "[streamed-hash(batch=3):" in report
        assert "peak_pairs=" in report
