"""Tests for repro.query.predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import QueryError
from repro.query import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    PointPredicate,
    RangePredicate,
    TruePredicate,
)


class TestRangePredicate:
    def test_half_open_semantics(self):
        p = RangePredicate("a", 2, 5)
        mask = p.mask({"a": np.array([1, 2, 4, 5, 6])})
        assert mask.tolist() == [False, True, True, False, False]

    def test_width(self):
        assert RangePredicate("a", 2, 5).width == 3
        assert RangePredicate("a", 2, 2).width == 0

    def test_empty_range_matches_nothing(self):
        p = RangePredicate("a", 3, 3)
        assert not p.mask({"a": np.array([2, 3, 4])}).any()

    def test_reversed_raises(self):
        with pytest.raises(QueryError):
            RangePredicate("a", 5, 2)

    def test_columns(self):
        assert RangePredicate("a", 0, 1).columns == ("a",)

    def test_missing_column_raises(self):
        with pytest.raises(QueryError):
            RangePredicate("a", 0, 1).mask({"b": np.array([1])})


class TestPointPredicate:
    def test_equality(self):
        mask = PointPredicate("a", 3).mask({"a": np.array([3, 4, 3])})
        assert mask.tolist() == [True, False, True]


class TestTruePredicate:
    def test_matches_all(self):
        mask = TruePredicate().mask({"a": np.arange(4)})
        assert mask.all() and mask.size == 4

    def test_needs_a_column_for_sizing(self):
        with pytest.raises(QueryError):
            TruePredicate().mask({})

    def test_no_columns(self):
        assert TruePredicate().columns == ()


class TestComposition:
    def test_and(self):
        p = RangePredicate("a", 0, 5) & RangePredicate("a", 3, 10)
        mask = p.mask({"a": np.array([1, 3, 4, 7])})
        assert mask.tolist() == [False, True, True, False]

    def test_or(self):
        p = RangePredicate("a", 0, 2) | RangePredicate("a", 8, 10)
        mask = p.mask({"a": np.array([1, 5, 9])})
        assert mask.tolist() == [True, False, True]

    def test_not(self):
        p = ~RangePredicate("a", 0, 5)
        mask = p.mask({"a": np.array([1, 7])})
        assert mask.tolist() == [False, True]

    def test_multi_column(self):
        p = RangePredicate("a", 0, 5) & RangePredicate("b", 10, 20)
        mask = p.mask({"a": np.array([1, 1]), "b": np.array([15, 25])})
        assert mask.tolist() == [True, False]
        assert p.columns == ("a", "b")

    def test_columns_deduplicated(self):
        p = AndPredicate(RangePredicate("a", 0, 1), PointPredicate("a", 3))
        assert p.columns == ("a",)

    def test_empty_composite_rejected(self):
        with pytest.raises(QueryError):
            AndPredicate()
        with pytest.raises(QueryError):
            OrPredicate()

    def test_demorgan(self, rng):
        values = {"a": rng.integers(0, 20, 100)}
        p = RangePredicate("a", 3, 9)
        q = RangePredicate("a", 6, 15)
        lhs = NotPredicate(AndPredicate(p, q)).mask(values)
        rhs = OrPredicate(NotPredicate(p), NotPredicate(q)).mask(values)
        assert (lhs == rhs).all()

    def test_reprs(self):
        text = repr(RangePredicate("a", 0, 1) & ~PointPredicate("b", 2))
        assert "RangePredicate" in text and "NotPredicate" in text
