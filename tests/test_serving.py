"""Serving layer: sessions, caches, the HTTP front end, and the smoke.

The heavy bit-identity proofs live in ``test_planner_equivalence.py``
(served caches vs uncached execution across policies × plan modes ×
stats modes × shard widths).  This module covers the serving machinery
itself: session/tenant scoping, both caches as units, the service's
operation surface and admission control, the HTTP wire, and the
concurrent multi-tenant smoke the CI step reruns against a live
server.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import faults
from repro._util.errors import (
    AdmissionError,
    QueryError,
    ScopeError,
    ServingError,
    SessionError,
    TransientFault,
)
from repro.query import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    PointPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.serving import (
    PlanCache,
    QueryService,
    ResultCache,
    SessionManager,
    TenantScope,
    guard_bounds,
    predicate_from_json,
    predicate_shape,
    serve_in_thread,
)
from repro.serving import RetryPolicy, ServiceClient
from repro.serving.server import RETRY_AFTER_SECONDS
from repro.storage import Catalog, Table


def _catalog(rows: int = 200, plan: str = "cost", stats: str = "hist") -> Catalog:
    """A one-table catalog: ``obs(value, sensor)``, value = 0..rows-1."""
    catalog = Catalog(plan=plan, stats=stats)
    table = catalog.create_table("obs", ["value", "sensor"])
    table.insert_batch(
        0, {"value": np.arange(rows), "sensor": np.zeros(rows, dtype=np.int64)}
    )
    return catalog


def _range_request(token: str, low: int, high: int, source: str = "obs") -> dict:
    return {
        "op": "query",
        "token": token,
        "source": source,
        "kind": "range",
        "predicate": {"type": "range", "column": "value", "low": low, "high": high},
    }


# -- sessions & scoping --------------------------------------------------


class TestSessions:
    def test_open_get_close_lifecycle(self):
        manager = SessionManager()
        scope = TenantScope()
        session = manager.open("alice", scope)
        assert session.token.startswith("alice-")
        assert manager.get(session.token) is session
        assert manager.open_count == 1 and manager.opened_total == 1
        manager.close(session.token)
        assert manager.open_count == 0 and manager.opened_total == 1
        with pytest.raises(SessionError):
            manager.get(session.token)
        with pytest.raises(SessionError):
            manager.close(session.token)

    def test_close_all_counts_open_sessions(self):
        manager = SessionManager()
        for _ in range(3):
            manager.open("t", TenantScope())
        assert manager.close_all() == 3
        assert manager.open_count == 0

    def test_tokens_are_unique(self):
        manager = SessionManager()
        tokens = {manager.open("t", TenantScope()).token for _ in range(50)}
        assert len(tokens) == 50


class TestTenantScope:
    def test_table_scope(self):
        scope = TenantScope(tables=frozenset({"obs"}))
        scope.check_source("alice", "obs")
        with pytest.raises(ScopeError, match="may not address"):
            scope.check_source("alice", "secrets")

    def test_unscoped_tenant_sees_everything(self):
        scope = TenantScope()
        scope.check_source("root", "anything")
        scope.check_values("root", "value", -10, 10**9)

    def test_value_clamp(self):
        scope = TenantScope(value_bounds={"value": (0, 100)})
        scope.check_values("bob", "value", 10, 50)
        scope.check_values("bob", "other", -5, 10**6)  # unclamped column
        with pytest.raises(ScopeError, match="clamped"):
            scope.check_values("bob", "value", 50, 150)
        with pytest.raises(ScopeError, match="clamped"):
            scope.check_values("bob", "value", -1, 10)


# -- predicate JSON ------------------------------------------------------


class TestPredicateJson:
    def test_all_kinds_roundtrip_to_equal_shapes(self):
        spec = {
            "type": "and",
            "children": [
                {"type": "range", "column": "a", "low": 0, "high": 10},
                {
                    "type": "or",
                    "children": [
                        {"type": "point", "column": "b", "value": 3},
                        {"type": "not", "child": {"type": "true"}},
                    ],
                },
            ],
        }
        built = predicate_from_json(spec)
        expected = AndPredicate(
            RangePredicate("a", 0, 10),
            OrPredicate(PointPredicate("b", 3), NotPredicate(TruePredicate())),
        )
        assert predicate_shape(built) == predicate_shape(expected)

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            [],
            "range",
            {"column": "a"},
            {"type": "rnage"},
            {"type": "range", "column": "a", "low": 0},
            {"type": "not"},
        ],
    )
    def test_malformed_specs_raise_query_error(self, bad):
        with pytest.raises(QueryError):
            predicate_from_json(bad)


# -- plan cache ----------------------------------------------------------


class TestPlanCache:
    def test_hit_while_generation_stands_still(self):
        catalog = _catalog()
        planner = catalog.planner("obs")
        plan = planner.plan(RangePredicate("value", 0, 50))
        cache = PlanCache()
        shape = predicate_shape(RangePredicate("value", 0, 50))
        cache.store("obs", shape, planner.generation, plan)
        assert cache.lookup("obs", shape, planner.generation) is plan
        assert cache.stats()["hits"] == 1
        catalog.close()

    def test_generation_move_evicts(self):
        catalog = _catalog()
        planner = catalog.planner("obs")
        table = catalog.get("obs")
        plan = planner.plan(RangePredicate("value", 0, 50))
        cache = PlanCache()
        shape = ("range", "value", 0, 50)
        cache.store("obs", shape, planner.generation, plan)
        table.insert_batch(1, {"value": [999], "sensor": [0]})  # bumps generation
        assert cache.lookup("obs", shape, planner.generation) is None
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0
        catalog.close()

    def test_dropped_index_evicts_without_generation_move(self):
        from repro.indexes import SortedIndex

        catalog = _catalog()
        index = catalog.create_index("obs", "value", SortedIndex)
        planner = catalog.planner("obs")
        plan = planner.plan(RangePredicate("value", 0, 50))
        assert plan.index is index
        cache = PlanCache()
        generation = planner.generation
        cache.store("obs", "shape", generation, plan)
        index.drop()
        assert planner.generation == generation  # drops don't bump it
        assert cache.lookup("obs", "shape", generation) is None
        catalog.close()

    def test_lru_capacity_and_invalidate_source(self):
        cache = PlanCache(max_entries=2)

        class FakePlan:
            index = None

        a, b, c = FakePlan(), FakePlan(), FakePlan()
        cache.store("s", "a", (0,), a)
        cache.store("s", "b", (0,), b)
        assert cache.lookup("s", "a", (0,)) is a  # refresh recency
        cache.store("s", "c", (0,), c)  # evicts "b", the LRU entry
        assert cache.lookup("s", "b", (0,)) is None
        assert cache.lookup("s", "a", (0,)) is a
        assert cache.invalidate_source("s") == 2
        assert len(cache) == 0
        with pytest.raises(QueryError):
            PlanCache(max_entries=0)

    def test_shape_rejects_unknown_predicate_types(self):
        class Weird:
            pass

        with pytest.raises(QueryError, match="cache shape"):
            predicate_shape(Weird())


# -- result cache --------------------------------------------------------


class TestResultCache:
    def test_guard_bounds_decomposition(self):
        assert guard_bounds(RangePredicate("a", 0, 10)) == (("a", 0, 10),)
        point = guard_bounds(PointPredicate("a", 5))
        assert point == (("a", 5, 6),)
        conj = guard_bounds(
            AndPredicate(RangePredicate("a", 0, 10), RangePredicate("b", 3, 7))
        )
        assert conj is not None and set(conj) == {("a", 0, 10), ("b", 3, 7)}
        assert guard_bounds(TruePredicate()) is None
        assert (
            guard_bounds(
                OrPredicate(RangePredicate("a", 0, 1), RangePredicate("a", 5, 6))
            )
            is None
        )

    def _seeded(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        cache = ResultCache()
        cache.watch("t", table)
        cache.watch("t", table)  # idempotent: one observer, not two
        active = np.arange(0, 10)
        cache.store(
            "t",
            "key",
            {"rf": 10},
            active,
            np.array([], dtype=np.int64),
            table,
            guard_bounds(RangePredicate("a", 0, 10)),
        )
        return table, cache

    def test_insert_outside_guard_keeps_entry(self):
        table, cache = self._seeded()
        table.insert_batch(1, {"a": np.arange(500, 520)})
        assert cache.lookup("t", "key") is not None

    def test_insert_inside_guard_evicts(self):
        table, cache = self._seeded()
        table.insert_batch(1, {"a": [5]})
        assert cache.lookup("t", "key") is None
        assert cache.stats()["invalidations"] == 1

    def test_unguarded_entry_evicts_on_any_insert(self):
        table, cache = self._seeded()
        cache.store(
            "t",
            "all",
            {"rf": 100},
            np.arange(100),
            np.array([], dtype=np.int64),
            table,
            None,  # TruePredicate-style: no provable guard
        )
        table.insert_batch(1, {"a": [10**6]})
        assert cache.lookup("t", "all") is None
        # The guarded entry survived the same (out-of-range) batch.
        assert cache.lookup("t", "key") is not None

    def test_forget_evicts_only_intersecting_cohorts(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})  # cohort 0
        table.insert_batch(1, {"a": np.arange(1000, 1100)})  # cohort 1
        cache = ResultCache()
        cache.watch("t", table)
        empty = np.array([], dtype=np.int64)
        cache.store("t", "low", {}, np.arange(0, 100), empty, table,
                    guard_bounds(RangePredicate("a", 0, 100)))
        cache.store("t", "high", {}, np.arange(100, 200), empty, table,
                    guard_bounds(RangePredicate("a", 1000, 1100)))
        table.forget(np.array([150, 151]), epoch=1)  # cohort 1 only
        assert cache.lookup("t", "high") is None
        assert cache.lookup("t", "low") is not None

    def test_unwatch_detaches_and_purges(self):
        table, cache = self._seeded()
        cache.unwatch("t", table)
        assert len(cache) == 0
        table.insert_batch(1, {"a": [5]})  # no observer left to notify
        assert cache.stats()["invalidations"] == 1  # only the unwatch purge

    def test_capacity_is_lru(self):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(10)})
        cache = ResultCache(max_entries=2)
        empty = np.array([], dtype=np.int64)
        for key in ("a", "b", "c"):
            cache.store("t", key, {}, np.arange(3), empty, table, None)
        assert cache.lookup("t", "a") is None
        assert cache.lookup("t", "b") is not None
        assert cache.lookup("t", "c") is not None
        with pytest.raises(QueryError):
            ResultCache(max_entries=0)


# -- the service ---------------------------------------------------------


class TestQueryService:
    def _service(self, **kwargs):
        catalog = _catalog()
        service = QueryService(catalog, **kwargs)
        service.register_tenant("alice", tables={"obs"})
        service.register_tenant(
            "bob", tables={"obs"}, value_bounds={"value": (0, 100)}
        )
        return catalog, service

    def test_query_miss_then_hit_with_replayed_accounting(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        first = service.handle(_range_request(token, 0, 10))
        second = service.handle(_range_request(token, 0, 10))
        assert first["ok"] and second["ok"]
        assert (first["cached"], second["cached"]) == (False, True)
        assert second["rf"] == 10 and second["fingerprint"] == first["fingerprint"]
        # The hit replayed record_access: both issues count, exactly as
        # an uncached service would have counted them.
        assert catalog.get("obs").access_counts()[:10].tolist() == [2] * 10
        stats = service.stats()
        assert stats["tenants"]["alice"]["cache_hits"] == 1
        assert stats["tenants"]["alice"]["rows_returned"] == 20
        assert stats["tenants"]["alice"]["access_total"] == 20
        catalog.close()

    def test_aggregate_query_roundtrip(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        request = {
            "op": "query",
            "token": token,
            "source": "obs",
            "kind": "aggregate",
            "function": "avg",
            "column": "value",
            "predicate": None,  # whole table
        }
        result = service.handle(request)
        assert result["kind"] == "aggregate"
        assert result["amnesiac_value"] == pytest.approx(99.5)
        assert service.handle(request)["cached"] is True
        catalog.close()

    def test_ingest_advances_epoch_and_respects_guards(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        service.handle(_range_request(token, 0, 10))
        # Out-of-guard batch: the cached entry must survive.
        ingest = service.handle(
            {
                "op": "ingest",
                "token": token,
                "source": "obs",
                "rows": {"value": [500, 501], "sensor": [1, 1]},
            }
        )
        assert ingest["inserted"] == 2 and ingest["epoch"] == 1
        assert service.handle(_range_request(token, 0, 10))["cached"] is True
        # In-guard batch: evicted, and the fresh answer sees the row.
        service.handle(
            {
                "op": "ingest",
                "token": token,
                "source": "obs",
                "rows": {"value": [5], "sensor": [2]},
            }
        )
        requery = service.handle(_range_request(token, 0, 10))
        assert requery["cached"] is False and requery["rf"] == 11
        catalog.close()

    def test_forget_invalidates_and_counts(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        service.handle(_range_request(token, 0, 10))
        gone = service.handle(
            {"op": "forget", "token": token, "source": "obs", "positions": [3, 4]}
        )
        assert gone["forgotten"] == 2
        requery = service.handle(_range_request(token, 0, 10))
        assert requery["cached"] is False
        assert requery["rf"] == 8 and requery["mf"] == 2
        assert service.stats()["tenants"]["alice"]["rows_forgotten"] == 2
        catalog.close()

    def test_scope_enforcement(self):
        catalog, service = self._service()
        alice = service.open_session("alice").token
        bob = service.open_session("bob").token
        with pytest.raises(ScopeError):  # table out of scope
            service.handle(_range_request(alice, 0, 10, source="other"))
        # bob is clamped to value < 100: in-range succeeds…
        assert service.handle(_range_request(bob, 0, 50))["ok"]
        with pytest.raises(ScopeError):  # …beyond the clamp fails
            service.handle(_range_request(bob, 50, 150))
        with pytest.raises(ScopeError):  # no provable bounds on the clamp
            service.handle(
                {
                    "op": "query",
                    "token": bob,
                    "source": "obs",
                    "kind": "range",
                    "predicate": {"type": "true"},
                }
            )
        with pytest.raises(ScopeError):  # ingest outside the clamp
            service.handle(
                {
                    "op": "ingest",
                    "token": bob,
                    "source": "obs",
                    "rows": {"value": [150], "sensor": [0]},
                }
            )
        with pytest.raises(SessionError):  # unknown token → 401 path
            service.handle(_range_request("nope", 0, 10))
        catalog.close()

    def test_malformed_requests(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        with pytest.raises(QueryError):
            service.handle("not a dict")
        with pytest.raises(QueryError):
            service.handle({"op": "frobnicate", "token": token})
        with pytest.raises(QueryError):
            service.handle(
                {"op": "query", "token": token, "source": "obs", "kind": "cube"}
            )
        with pytest.raises(QueryError):
            service.handle({"op": "ingest", "token": token, "source": "obs"})
        with pytest.raises(QueryError):
            service.handle({"op": "forget", "token": token, "source": "obs"})
        with pytest.raises(SessionError):
            service.open_session("mallory")  # unregistered tenant
        catalog.close()

    def test_admission_control_rejects_at_capacity(self):
        catalog, service = self._service(max_inflight=1)
        token = service.open_session("alice").token
        assert service._admission.acquire(blocking=False)  # fill the slot
        try:
            with pytest.raises(AdmissionError):
                service.handle(_range_request(token, 0, 10))
        finally:
            service._admission.release()
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["tenants"]["alice"]["rejected"] == 1
        # Session ops are always admitted; the slot is free again.
        assert service.handle({"op": "stats"})["ok"]
        assert service.handle(_range_request(token, 0, 10))["ok"]
        with pytest.raises(ServingError):
            QueryService(_catalog(), max_inflight=0)
        catalog.close()

    def test_explain_reports_the_plan(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        result = service.handle(
            {
                "op": "explain",
                "token": token,
                "source": "obs",
                "kind": "range",
                "predicate": {
                    "type": "range",
                    "column": "value",
                    "low": 0,
                    "high": 10,
                },
            }
        )
        assert result["ok"] and result["mode"] in {"scan", "zonemap", "index"}
        assert result["plan"]
        catalog.close()

    def test_drop_recreate_purges_service_caches(self):
        catalog, service = self._service()
        token = service.open_session("alice").token
        service.handle(_range_request(token, 0, 10))
        assert service.result_cache.entries_for("obs") == 1
        catalog.drop("obs")
        assert service.result_cache.entries_for("obs") == 0
        assert len(service.plan_cache) == 0
        # Recreate under the same name with different data: the service
        # must serve the new table, never the old cache.
        table = catalog.create_table("obs", ["value", "sensor"])
        table.insert_batch(0, {"value": [1, 2, 3], "sensor": [0, 0, 0]})
        result = service.handle(_range_request(token, 0, 10))
        assert result["cached"] is False and result["rf"] == 3
        catalog.close()

    def test_paranoid_mode_verifies_hits(self):
        catalog, service = self._service(paranoid=True)
        token = service.open_session("alice").token
        first = service.handle(_range_request(token, 0, 10))
        second = service.handle(_range_request(token, 0, 10))
        assert second["cached"] is True
        assert second["fingerprint"] == first["fingerprint"]
        assert service.stats()["stale_hits"] == 0
        # Paranoid hits re-execute, so accounting still matches an
        # uncached service: one bump per issue.
        assert catalog.get("obs").access_counts()[:10].tolist() == [2] * 10
        # Corrupt an entry by hand: the paranoid check must catch it.
        entry = service.result_cache.lookup(
            "obs", ("range", ("range", "value", 0, 10))
        )
        entry.payload["rf"] = 99
        with pytest.raises(ServingError, match="stale cache hit"):
            service.handle(_range_request(token, 0, 10))
        assert service.stats()["stale_hits"] == 1
        catalog.close()

    def test_close_detaches_from_catalog(self):
        catalog, service = self._service()
        service.open_session("alice")
        service.close()
        assert service.sessions.open_count == 0
        # Lifecycle events no longer reach the detached service.
        catalog.drop("obs")
        catalog.create_table("obs", ["value"])
        catalog.close()


# -- HTTP front end ------------------------------------------------------


def _post(port: int, body: dict) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", "/", json.dumps(body), {"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(port: int, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHTTPServer:
    def test_end_to_end_over_the_wire(self):
        catalog = _catalog()
        service = QueryService(catalog)
        service.register_tenant("alice", tables={"obs"})
        service.register_tenant(
            "bob", tables={"obs"}, value_bounds={"value": (0, 100)}
        )
        server, thread = serve_in_thread(service)
        port = server.server_address[1]
        try:
            status, health = _get(port, "/health")
            assert status == 200
            assert health["ok"] is True
            assert health["inflight"] == 0
            assert health["max_inflight"] == service.max_inflight
            assert health["degraded"] is False
            status, body = _post(port, {"op": "open_session", "tenant": "alice"})
            assert status == 200 and body["ok"]
            token = body["token"]

            status, first = _post(port, _range_request(token, 0, 10))
            assert status == 200 and first["cached"] is False
            status, second = _post(port, _range_request(token, 0, 10))
            assert status == 200 and second["cached"] is True
            assert second["fingerprint"] == first["fingerprint"]

            # Typed errors map to their status codes.
            assert _post(port, _range_request("bad-token", 0, 10))[0] == 401
            status, body = _post(port, {"op": "open_session", "tenant": "bob"})
            bob = body["token"]
            assert _post(port, _range_request(bob, 50, 150))[0] == 403
            assert _post(port, {"op": "nope", "token": token})[0] == 400
            assert _get(port, "/missing")[0] == 404

            # Raw bad JSON is a 400, not a hung connection.
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                conn.request("POST", "/", "{not json")
                assert conn.getresponse().status == 400
            finally:
                conn.close()

            status, stats = _get(port, "/stats")
            assert status == 200
            assert stats["result_cache"]["hits"] >= 1
            assert stats["sessions_open"] == 2

            status, body = _post(port, {"op": "close_session", "token": token})
            assert status == 200 and body["ok"]
            assert _post(port, _range_request(token, 0, 10))[0] == 401
        finally:
            server.shutdown()
            thread.join(5)
            server.server_close()
            service.close()
            catalog.close()
        assert not thread.is_alive()


# -- the concurrent smoke ------------------------------------------------


class TestConcurrentSmoke:
    """~100 concurrent HTTP clients, two tenants, paranoid service.

    This is the CI smoke contract from the issue: cache hit-rate above
    zero, zero stale answers (asserted by the paranoid re-execution on
    every hit, not assumed), and a clean shutdown.
    """

    CLIENTS = 100

    def _client(self, port: int, index: int) -> list:
        tenant = "alice" if index % 2 == 0 else "bob"
        outcomes = []

        def call(body: dict) -> dict:
            # 429 is legal under admission control; back off and retry.
            for attempt in range(40):
                status, payload = _post(port, body)
                if status != 429:
                    outcomes.append((status, body["op"], payload))
                    return payload
                time.sleep(0.01 * (attempt + 1))
            raise AssertionError("admission control never let the client in")

        token = call({"op": "open_session", "tenant": tenant})["token"]
        # A small shared shape pool so distinct clients collide on the
        # cache; bob's shapes stay inside the [0, 1000) clamp.
        low = (index % 5) * 100
        call(_range_request(token, low, low + 100))
        call(_range_request(token, low, low + 100))
        call(
            {
                "op": "query",
                "token": token,
                "source": "obs",
                "kind": "aggregate",
                "function": "sum",
                "column": "value",
                "predicate": {
                    "type": "range",
                    "column": "value",
                    "low": 0,
                    "high": 500,
                },
            }
        )
        if tenant == "alice" and index % 10 == 0:
            call(
                {
                    "op": "ingest",
                    "token": token,
                    "source": "obs",
                    "rows": {"value": [1500 + index], "sensor": [index]},
                }
            )
        if tenant == "alice" and index % 20 == 0:
            call({"op": "forget", "token": token, "source": "obs", "n": 1})
        call({"op": "close_session", "token": token})
        return outcomes

    def test_hundred_clients_two_tenants_zero_stale(self):
        catalog = Catalog(plan="cost", stats="hist")
        table = catalog.create_table("obs", ["value", "sensor"])
        rng = np.random.default_rng(20170108)
        table.insert_batch(
            0,
            {
                "value": rng.integers(0, 1000, size=2000),
                "sensor": rng.integers(0, 16, size=2000),
            },
        )
        service = QueryService(catalog, max_inflight=64, paranoid=True)
        service.register_tenant("alice", tables={"obs"})
        service.register_tenant(
            "bob", tables={"obs"}, value_bounds={"value": (0, 1000)}
        )
        server, thread = serve_in_thread(service)
        port = server.server_address[1]
        try:
            with ThreadPoolExecutor(max_workers=self.CLIENTS) as pool:
                futures = [
                    pool.submit(self._client, port, index)
                    for index in range(self.CLIENTS)
                ]
                outcomes = [f.result(timeout=120) for f in futures]
            for client_outcomes in outcomes:
                for status, op, payload in client_outcomes:
                    assert status == 200, (op, payload)
            stats = service.stats()
            # Every hit was re-executed and compared by the paranoid
            # service: a hit rate with zero stale hits is a *proof* of
            # bit-identical serving under concurrent mutation.
            assert stats["stale_hits"] == 0
            assert stats["result_cache"]["hits"] > 0
            assert stats["result_cache"]["hit_rate"] > 0
            assert stats["sessions_opened"] == self.CLIENTS
            assert stats["sessions_open"] == 0  # every client closed
            for tenant in ("alice", "bob"):
                assert stats["tenants"][tenant]["queries"] > 0
                assert stats["tenants"][tenant]["access_total"] > 0
            assert stats["tenants"]["alice"]["rows_ingested"] == 10
            assert stats["tenants"]["alice"]["rows_forgotten"] == 5
        finally:
            server.shutdown()
            thread.join(10)
            server.server_close()
            service.close()
            catalog.close()
        assert not thread.is_alive(), "server thread must stop cleanly"


# -- resilience ----------------------------------------------------------


def _post_raw(port: int, body: dict) -> tuple[int, dict, dict]:
    """Like ``_post``, but also returns the response headers."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", "/", json.dumps(body), {"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read()),
        )
    finally:
        conn.close()


class TestRetryPolicy:
    def test_same_seed_same_backoff_sequence(self):
        first = RetryPolicy(seed=5, sleep=lambda s: None)
        second = RetryPolicy(seed=5, sleep=lambda s: None)
        other = RetryPolicy(seed=6, sleep=lambda s: None)
        sequence = [first.backoff(k) for k in range(5)]
        assert sequence == [second.backoff(k) for k in range(5)]
        assert sequence != [other.backoff(k) for k in range(5)]

    def test_backoff_is_capped_exponential(self):
        bare = RetryPolicy(
            jitter=0.0, base_delay=0.05, multiplier=2.0, max_delay=0.15
        )
        assert [bare.backoff(k) for k in range(4)] == [0.05, 0.1, 0.15, 0.15]

    def test_retry_after_floors_the_delay(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.02, jitter=0.0)
        assert policy.backoff(0) == 0.01
        assert policy.backoff(0, retry_after=3.5) == 3.5

    def test_call_retries_then_succeeds(self):
        slept: list[float] = []
        policy = RetryPolicy(attempts=3, sleep=slept.append)
        calls: list[int] = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                fault = TransientFault("not yet")
                fault.retry_after = 0.7
                raise fault
            return "done"

        assert policy.call(flaky) == "done"
        assert len(calls) == 3
        assert len(slept) == 2 and all(s >= 0.7 for s in slept)

    def test_call_exhausts_budget_and_raises(self):
        calls: list[int] = []

        def always_failing():
            calls.append(1)
            raise TransientFault("still down")

        policy = RetryPolicy(attempts=2, sleep=lambda s: None)
        with pytest.raises(TransientFault):
            policy.call(always_failing)
        assert len(calls) == 2

    def test_non_transient_errors_are_not_retried(self):
        calls: list[int] = []

        def broken():
            calls.append(1)
            raise ServingError("permanent")

        policy = RetryPolicy(attempts=5, sleep=lambda s: None)
        with pytest.raises(ServingError):
            policy.call(broken)
        assert len(calls) == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServingError):
            RetryPolicy(attempts=0)
        with pytest.raises(ServingError):
            RetryPolicy(base_delay=-1)


class TestDegradedMode:
    """Graceful degradation: hysteresis and what exactly gets shed."""

    @staticmethod
    def _admit_at_depth(service, depth: int) -> None:
        with service._traffic_lock:
            service._inflight = depth
            service._note_load_locked()

    def test_hysteresis_enters_and_exits(self):
        catalog = _catalog()
        service = QueryService(catalog, max_inflight=4, degrade_after=2)
        try:
            assert (service._high_water, service._low_water) == (3, 1)
            # One admission at high water is not "sustained" yet.
            self._admit_at_depth(service, 3)
            assert service.degraded is False
            self._admit_at_depth(service, 2)  # streak broken
            self._admit_at_depth(service, 3)
            self._admit_at_depth(service, 3)  # degrade_after reached
            assert service.degraded is True
            # Between the water marks the mode holds — no flapping.
            self._admit_at_depth(service, 2)
            assert service.degraded is True
            self._admit_at_depth(service, 1)  # low water: recover
            assert service.degraded is False
        finally:
            service.close()
            catalog.close()

    def test_degraded_sheds_paranoia_and_cache_writes(self):
        catalog = _catalog()
        # max_inflight=3: low water is 0, so single-threaded requests
        # (depth 1) neither enter nor exit the mode on their own.
        service = QueryService(catalog, max_inflight=3, paranoid=True)
        try:
            service.register_tenant("alice")
            token = service.open_session("alice").token
            executions: list[int] = []
            real_execute = service._execute

            def counting_execute(table, query, epoch, *, plan=None):
                executions.append(1)
                return real_execute(table, query, epoch, plan=plan)

            service._execute = counting_execute
            request = _range_request(token, 10, 40)
            assert service.handle(request)["cached"] is False
            # Healthy paranoid hit re-executes to validate the cache.
            assert service.handle(request)["cached"] is True
            assert len(executions) == 2
            with service._traffic_lock:
                service._degraded = True
            # Degraded hit skips the paranoid re-execution...
            assert service.handle(request)["cached"] is True
            assert len(executions) == 2
            # ...and a degraded miss answers but sheds the cache write.
            other = _range_request(token, 50, 90)
            assert service.handle(other)["cached"] is False
            assert service.handle(other)["cached"] is False  # still no entry
            health = service.health()
            assert health["degraded"] is True
            assert health["shed_writes"] == 2
        finally:
            service.close()
            catalog.close()


class TestResilientWire:
    """The failure half of the HTTP contract, over real sockets."""

    def _serve(self, *, max_inflight=4, deadline=None):
        catalog = _catalog()
        service = QueryService(catalog, max_inflight=max_inflight)
        service.register_tenant("alice")
        server, thread = serve_in_thread(service, deadline=deadline)
        return catalog, service, server, thread, server.server_address[1]

    @staticmethod
    def _stop(catalog, service, server, thread) -> None:
        server.shutdown()
        thread.join(10)
        server.server_close()
        service.close()
        catalog.close()

    @staticmethod
    def _drain_inflight(service, timeout: float = 5.0) -> None:
        deadline = time.time() + timeout
        while service.health()["inflight"] and time.time() < deadline:
            time.sleep(0.01)

    def test_429_carries_retry_after_header(self):
        catalog, service, server, thread, port = self._serve(max_inflight=1)
        try:
            _, body = _post(port, {"op": "open_session", "tenant": "alice"})
            token = body["token"]
            assert service._admission.acquire(blocking=False)
            try:
                status, headers, body = _post_raw(
                    port, _range_request(token, 0, 10)
                )
            finally:
                service._admission.release()
            assert status == 429
            assert headers.get("Retry-After") == str(RETRY_AFTER_SECONDS)
            assert body["error"] == "AdmissionError"
        finally:
            self._stop(catalog, service, server, thread)

    def test_deadline_returns_503_with_retry_after(self):
        catalog, service, server, thread, port = self._serve(deadline=0.1)
        try:
            _, body = _post(port, {"op": "open_session", "tenant": "alice"})
            token = body["token"]
            with faults.armed("serve.handle:delay=0.6"):
                status, headers, body = _post_raw(
                    port, _range_request(token, 0, 10)
                )
            assert status == 503
            assert headers.get("Retry-After") == str(RETRY_AFTER_SECONDS)
            assert body["error"] == "DeadlineExceeded"
            # The zombie request finishes in the dispatch pool and only
            # then frees its admission slot — wait so shutdown is clean.
            self._drain_inflight(service)
            assert service.health()["inflight"] == 0
        finally:
            self._stop(catalog, service, server, thread)

    def test_client_retries_through_a_crashed_worker(self):
        catalog, service, server, thread, port = self._serve()
        try:
            client = ServiceClient(
                "127.0.0.1",
                port,
                policy=RetryPolicy(attempts=3, sleep=lambda s: None),
            )
            token = client.request({"op": "open_session", "tenant": "alice"})[
                "token"
            ]
            with faults.armed("serve.handle:crash") as plan:
                response = client.request(_range_request(token, 0, 50))
                # Crash on hit 1 dropped the connection without a reply;
                # the retry (hit 2) answered.
                assert plan.hits("serve.handle") == 2
            assert response["ok"] is True
            assert response["rf"] == 50
        finally:
            self._stop(catalog, service, server, thread)

    def test_flaky_backend_503s_honor_retry_after_floor(self):
        catalog, service, server, thread, port = self._serve()
        try:
            _, body = _post(port, {"op": "open_session", "tenant": "alice"})
            token = body["token"]
            slept: list[float] = []
            client = ServiceClient(
                "127.0.0.1",
                port,
                policy=RetryPolicy(
                    attempts=3,
                    base_delay=0.01,
                    max_delay=0.02,
                    sleep=slept.append,
                ),
            )
            with faults.armed("serve.query:flaky=1.0"):
                with pytest.raises(TransientFault):
                    client.request(_range_request(token, 0, 10))
            # Every backoff was floored by the server's Retry-After.
            assert len(slept) == 2
            assert all(s >= RETRY_AFTER_SECONDS for s in slept)
            # Disarmed, the same client recovers immediately.
            assert client.request(_range_request(token, 0, 10))["ok"] is True
        finally:
            self._stop(catalog, service, server, thread)
