"""Tests for repro.stats: histograms, moments, divergences, zipf."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, StorageError
from repro.stats import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    StreamingMoments,
    TableHistogramStats,
    earth_movers_distance,
    fit_zipf_exponent,
    gini_coefficient,
    js_divergence,
    kl_divergence,
    normalize,
    top_share,
    total_variation,
    traffic_weighted_median,
)
from repro.storage import CohortZoneMap, Table


class TestEquiWidthHistogram:
    def test_add_and_counts(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        hist.add(np.array([0, 4, 5, 9]))
        assert hist.counts.tolist() == [2, 2]
        assert hist.total == 4

    def test_clamps_out_of_range(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        hist.add(np.array([-5, 100]))
        assert hist.counts.tolist() == [1, 1]

    def test_remove(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        hist.add(np.array([1, 8]))
        hist.remove(np.array([1]))
        assert hist.counts.tolist() == [0, 1]

    def test_remove_underflow_raises(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        hist.add(np.array([1]))
        with pytest.raises(ConfigError):
            hist.remove(np.array([1, 1]))

    def test_pmf_empty_is_uniform(self):
        hist = EquiWidthHistogram(0, 9, bins=4)
        assert hist.pmf().tolist() == [0.25] * 4

    def test_pmf_normalised(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        hist.add(np.array([0, 1, 9]))
        pmf = hist.pmf()
        assert abs(pmf.sum() - 1.0) < 1e-12
        assert pmf[0] == pytest.approx(2 / 3)

    def test_bin_edges(self):
        edges = EquiWidthHistogram(0, 9, bins=2).bin_edges()
        assert edges.tolist() == [0.0, 5.0, 10.0]

    def test_from_values_and_copy(self):
        hist = EquiWidthHistogram.from_values(np.arange(10), 0, 9, bins=5)
        clone = hist.copy()
        clone.add(np.array([0]))
        assert hist.total == 10 and clone.total == 11

    def test_reversed_range_rejected(self):
        with pytest.raises(ConfigError):
            EquiWidthHistogram(5, 4)

    def test_counts_view_readonly(self):
        hist = EquiWidthHistogram(0, 9, bins=2)
        with pytest.raises(ValueError):
            hist.counts[0] = 5

    def test_degenerate_single_value_range(self):
        hist = EquiWidthHistogram(5, 5, bins=3)
        hist.add(np.array([5, 5]))
        assert hist.total == 2


class TestEquiDepthHistogram:
    def test_quartiles(self):
        hist = EquiDepthHistogram.from_values(np.arange(101), bins=4)
        assert hist.boundaries.tolist() == [0, 25, 50, 75, 100]

    def test_bin_of_clamps(self):
        hist = EquiDepthHistogram.from_values(np.arange(101), bins=4)
        assert hist.bin_of(np.array([-5, 30, 500])).tolist() == [0, 1, 3]

    def test_validation(self):
        with pytest.raises(ConfigError):
            EquiDepthHistogram(np.array([1.0]))
        with pytest.raises(ConfigError):
            EquiDepthHistogram(np.array([2.0, 1.0]))
        with pytest.raises(ConfigError):
            EquiDepthHistogram.from_values(np.empty(0))


class TestHistogramContracts:
    """Direct contracts for the planner-facing histogram behaviours
    (previously exercised mostly through the summary layer)."""

    def test_equiwidth_add_remove_roundtrip(self, rng):
        """remove() is the exact inverse of add(): interleaved batches
        come back out leaving precisely the still-resident mass."""
        hist = EquiWidthHistogram(0, 999, bins=32)
        keep = rng.integers(0, 1000, 500)
        churn = [rng.integers(0, 1000, rng.integers(1, 80)) for _ in range(6)]
        hist.add(keep)
        for batch in churn:
            hist.add(batch)
        for batch in reversed(churn):
            hist.remove(batch)
        reference = EquiWidthHistogram.from_values(keep, 0, 999, bins=32)
        assert hist.counts.tolist() == reference.counts.tolist()
        assert hist.total == keep.size
        hist.remove(keep)
        assert hist.total == 0
        assert hist.counts.tolist() == [0] * 32
        np.testing.assert_allclose(hist.pmf(), np.full(32, 1 / 32))

    def test_equiwidth_remove_unknown_values_caught(self):
        hist = EquiWidthHistogram(0, 9, bins=10)
        hist.add(np.array([1, 1, 5]))
        with pytest.raises(ConfigError):
            hist.remove(np.array([7]))  # bin 7 never held a value

    def test_equidepth_boundaries_on_skewed_data(self, rng):
        """Quantile boundaries on Zipf-skewed data: monotone, spanning
        the sample, and splitting the mass into near-equal buckets —
        narrow hot buckets, wide cold ones."""
        values = rng.zipf(1.5, 4000).astype(np.float64)
        hist = EquiDepthHistogram.from_values(values, bins=8)
        boundaries = hist.boundaries
        assert boundaries.size == 9
        assert (np.diff(boundaries) >= 0).all()
        assert boundaries[0] == values.min()
        assert boundaries[-1] == values.max()
        # Equi-depth means each bucket holds ~1/8 of the sample.  Heavy
        # ties on the hot keys can shift mass between adjacent buckets,
        # so allow a generous band around the ideal share.
        counts = np.bincount(hist.bin_of(values), minlength=8)
        assert counts.sum() == values.size
        assert counts.max() <= values.size * 0.45
        # The hot end is far narrower than the cold tail.
        assert (boundaries[1] - boundaries[0]) < (
            boundaries[-1] - boundaries[-2]
        )

    def test_equidepth_uniform_matches_linspace(self):
        values = np.arange(1000, dtype=np.float64)
        hist = EquiDepthHistogram.from_values(values, bins=4)
        np.testing.assert_allclose(
            hist.boundaries, np.linspace(0, 999, 5), atol=1e-9
        )

    def test_mass_interpolates_bins(self):
        hist = EquiWidthHistogram.from_values(
            np.repeat(np.arange(10), 10), 0, 9, bins=5
        )
        assert hist.mass(0, 10) == pytest.approx(100.0)
        assert hist.mass(0, 2) == pytest.approx(20.0)
        assert hist.mass(0, 1) == pytest.approx(10.0)  # half of bin 0
        assert hist.mass(4, 4) == 0.0
        assert hist.mass(50, 60) == 0.0  # beyond the domain


class TestTrafficWeightedMedian:
    def test_unit_weights_match_plain_median(self, rng):
        values = rng.integers(0, 1000, 501)
        got = traffic_weighted_median(values, np.ones(values.size))
        assert got == int(np.median(values))

    def test_heavy_weights_pull_the_cut(self):
        values = np.array([10, 20, 30, 40])
        weights = np.array([100.0, 1.0, 1.0, 1.0])
        assert traffic_weighted_median(values, weights) == 10

    def test_order_independent(self, rng):
        values = rng.integers(0, 100, 200)
        weights = rng.random(200)
        shuffle = rng.permutation(200)
        assert traffic_weighted_median(values, weights) == (
            traffic_weighted_median(values[shuffle], weights[shuffle])
        )

    def test_degenerate_inputs(self):
        with pytest.raises(StorageError):
            traffic_weighted_median(np.empty(0), np.empty(0))
        with pytest.raises(StorageError):
            traffic_weighted_median(np.array([1]), np.array([-1.0]))
        # All-zero weights fall back to the unweighted middle value.
        assert traffic_weighted_median(
            np.array([5, 7, 9]), np.zeros(3)
        ) == 7


class TestTableHistogramStats:
    def _table(self, values):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.asarray(values)})
        return table

    def test_estimates_are_exact_on_bin_boundaries(self):
        table = self._table(np.repeat(np.arange(8), 5))
        stats = TableHistogramStats(table, bins=8)
        assert stats.estimate("a", 0, 8) == (40.0, 0.0)
        assert stats.estimate("a", 0, 1) == (5.0, 0.0)

    def test_forget_moves_mass_across(self):
        table = self._table(np.repeat(np.arange(8), 5))
        stats = TableHistogramStats(table, bins=8)
        stats.estimate("a", 0, 1)  # force the initial build
        table.forget(np.arange(0, 10), epoch=1)  # values 0 and 1
        assert stats.estimate("a", 0, 2) == (0.0, 10.0)
        assert stats.estimate("a", 2, 8) == (30.0, 0.0)

    def test_incremental_matches_rebuilt(self, rng):
        """The live insert/forget stream lands exactly where a from-
        scratch rebuild would put it — the add/remove roundtrip under
        forgetting."""
        table = Table("t", ["a"])
        stats = TableHistogramStats(table, bins=16)
        # Pin the domain with the first batch and force the build, so
        # every later hook folds in incrementally (no lazy rebuilds).
        table.insert_batch(0, {"a": np.array([0, 499])})
        stats.histograms("a")
        for epoch in range(1, 7):
            table.insert_batch(epoch, {"a": rng.integers(0, 500, 60)})
            victims = np.flatnonzero(rng.random(table.total_rows) < 0.2)
            table.forget(victims, epoch=epoch)
        assert not stats._dirty  # genuinely incremental from here on
        live_active, live_forgotten = stats.histograms("a")
        values = table.values("a")
        mask = table.active_mask()
        assert live_active.total == int(mask.sum())
        assert live_forgotten.total == int((~mask).sum())
        rebuilt_active = EquiWidthHistogram.from_values(
            values[mask], live_active.lo, live_active.hi, bins=16
        )
        rebuilt_forgotten = EquiWidthHistogram.from_values(
            values[~mask], live_active.lo, live_active.hi, bins=16
        )
        assert live_active.counts.tolist() == rebuilt_active.counts.tolist()
        assert (
            live_forgotten.counts.tolist()
            == rebuilt_forgotten.counts.tolist()
        )

    def test_backfill_on_populated_table(self):
        """Late attachment (the zone-map contract): a table that
        already inserted and forgot rows yields exact statistics."""
        table = self._table(np.repeat(np.arange(8), 5))
        table.forget(np.arange(0, 5), epoch=1)
        stats = TableHistogramStats(table, bins=8)
        assert stats.estimate("a", 0, 1) == (0.0, 5.0)
        assert stats.estimate("a", 1, 8) == (35.0, 0.0)

    def test_domain_growth_rebins(self):
        table = self._table(np.arange(10))
        stats = TableHistogramStats(table, bins=10)
        assert stats.estimate("a", 0, 10) == (10.0, 0.0)
        table.insert_batch(1, {"a": np.arange(100, 110)})
        active, _ = stats.histograms("a")
        assert (active.lo, active.hi) == (0, 109)
        assert stats.estimate("a", 0, 200) == (20.0, 0.0)

    def test_unknown_column_rejected(self):
        table = self._table([1, 2, 3])
        stats = TableHistogramStats(table)
        assert stats.covers("a") and not stats.covers("b")
        with pytest.raises(StorageError):
            stats.estimate("b", 0, 1)
        with pytest.raises(StorageError):
            TableHistogramStats(table, columns=[])

    def test_qerror_histogram_beats_uniformity_on_zipf(self, rng):
        """The headline statistics contract: on a Zipf-skewed stream
        the histogram estimates carry a lower mean q-error than the
        zone map's per-cohort uniformity; on uniform data they are at
        least no worse."""

        def build(sample):
            table = Table("t", ["a"])
            for epoch in range(5):
                table.insert_batch(epoch, {"a": sample(400)})
            table.forget(
                np.flatnonzero(rng.random(table.total_rows) < 0.15), epoch=5
            )
            return table, CohortZoneMap(table)

        def qerror(est, actual):
            est, actual = max(est, 1.0), max(actual, 1.0)
            return max(est / actual, actual / est)

        def mean_qerror(table, zone_map, stats, probes):
            values = table.values("a")
            errors = []
            for low, high in probes:
                actual = int(((values >= low) & (values < high)).sum())
                estimate = zone_map.estimate("a", low, high, stats=stats)
                errors.append(qerror(estimate.est_rows, actual))
            return float(np.mean(errors))

        domain = 2000
        probes = [(low, low + 40) for low in range(0, domain, 100)]
        zipf_table, zipf_zm = build(
            lambda n: np.minimum((rng.zipf(1.4, n) - 1) * 8, domain - 1)
        )
        zipf_stats = TableHistogramStats(zipf_table, bins=64)
        assert mean_qerror(zipf_table, zipf_zm, zipf_stats, probes) < (
            mean_qerror(zipf_table, zipf_zm, None, probes)
        )
        flat_table, flat_zm = build(
            lambda n: rng.integers(0, domain, n)
        )
        flat_stats = TableHistogramStats(flat_table, bins=64)
        assert mean_qerror(flat_table, flat_zm, flat_stats, probes) <= (
            mean_qerror(flat_table, flat_zm, None, probes) * 1.05
        )


class TestStreamingMoments:
    def test_push_matches_numpy(self):
        values = np.array([1.5, -2.0, 7.0, 3.0])
        m = StreamingMoments()
        for v in values:
            m.push(float(v))
        assert m.count == 4
        assert m.mean == pytest.approx(values.mean())
        assert m.variance == pytest.approx(values.var())
        assert m.min == values.min() and m.max == values.max()
        assert m.total == pytest.approx(values.sum())

    def test_update_batch_matches_push(self, rng):
        values = rng.normal(size=1000)
        a, b = StreamingMoments(), StreamingMoments()
        a.update(values)
        for v in values:
            b.push(float(v))
        assert a.mean == pytest.approx(b.mean)
        assert a.variance == pytest.approx(b.variance)

    def test_merge_equals_concatenation(self, rng):
        x, y = rng.normal(size=500), rng.normal(size=300) + 5
        a = StreamingMoments()
        a.update(x)
        b = StreamingMoments()
        b.update(y)
        a.merge(b)
        combined = np.concatenate([x, y])
        assert a.count == 800
        assert a.mean == pytest.approx(combined.mean())
        assert a.variance == pytest.approx(combined.var())

    def test_merge_empty_sides(self):
        a = StreamingMoments()
        b = StreamingMoments()
        b.update(np.array([1.0, 2.0]))
        a.merge(b)
        assert a.count == 2
        a.merge(StreamingMoments())
        assert a.count == 2

    def test_sample_variance(self):
        m = StreamingMoments()
        m.update(np.array([1.0, 2.0, 3.0]))
        assert m.sample_variance == pytest.approx(1.0)

    def test_variance_degenerate(self):
        m = StreamingMoments()
        assert m.variance == 0.0
        m.push(5.0)
        assert m.variance == 0.0

    def test_as_dict_empty_raises(self):
        with pytest.raises(ConfigError):
            StreamingMoments().as_dict()


class TestDivergences:
    def test_normalize(self):
        assert normalize([2, 2]).tolist() == [0.5, 0.5]
        assert normalize([0, 0]).tolist() == [0.5, 0.5]
        with pytest.raises(ConfigError):
            normalize([-1, 1])

    def test_kl_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_positive_and_asymmetric(self):
        # Binary mirror pairs are symmetric by construction; use three
        # bins to witness the asymmetry.
        p, q = np.array([0.8, 0.15, 0.05]), np.array([0.1, 0.2, 0.7])
        assert kl_divergence(p, q) > 0
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_kl_finite_on_empty_bins(self):
        assert np.isfinite(kl_divergence([1, 1], [2, 0]))

    def test_js_symmetric_and_bounded(self):
        p, q = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        js = js_divergence(p, q)
        assert js == pytest.approx(js_divergence(q, p))
        assert js == pytest.approx(np.log(2), rel=1e-6)

    def test_total_variation(self):
        assert total_variation([1, 0], [0, 1]) == pytest.approx(1.0)
        assert total_variation([1, 1], [1, 1]) == 0.0

    def test_emd_counts_distance(self):
        # Mass must travel 2 bins vs 1 bin.
        near = earth_movers_distance([1, 0, 0], [0, 1, 0])
        far = earth_movers_distance([1, 0, 0], [0, 0, 1])
        assert far == pytest.approx(2 * near)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            kl_divergence([1, 2], [1, 2, 3])


class TestZipfHelpers:
    def test_fit_recovers_exponent(self, rng):
        from repro.datagen import ZipfianDistribution

        values = ZipfianDistribution(domain=5000, theta=1.3).sample(200_000, rng)
        theta = fit_zipf_exponent(values, max_ranks=100)
        assert 1.0 < theta < 1.6

    def test_fit_needs_two_values(self):
        with pytest.raises(ConfigError):
            fit_zipf_exponent(np.array([7, 7, 7]))
        with pytest.raises(ConfigError):
            fit_zipf_exponent(np.empty(0, dtype=np.int64))

    def test_top_share_uniform(self):
        values = np.repeat(np.arange(10), 10)
        assert top_share(values, 0.2) == pytest.approx(0.2)

    def test_top_share_bounds(self):
        with pytest.raises(ConfigError):
            top_share(np.array([1]), 0.0)

    def test_gini_extremes(self):
        equal = np.repeat(np.arange(10), 5)
        assert gini_coefficient(equal) == pytest.approx(0.0, abs=1e-9)
        skewed = np.concatenate([np.zeros(990, dtype=int), np.arange(1, 11)])
        assert gini_coefficient(skewed) > 0.8

    def test_gini_single_value(self):
        assert gini_coefficient(np.array([5, 5])) == 0.0
