"""Tests for repro.storage.bitmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import StorageError
from repro.storage import Bitmap


class TestGrowth:
    def test_empty(self):
        bm = Bitmap()
        assert len(bm) == 0
        assert bm.count_set() == 0
        assert bm.count_clear() == 0

    def test_extend_set(self):
        bm = Bitmap()
        bm.extend(10, value=True)
        assert len(bm) == 10
        assert bm.count_set() == 10

    def test_extend_clear(self):
        bm = Bitmap()
        bm.extend(10, value=False)
        assert bm.count_set() == 0
        assert bm.count_clear() == 10

    def test_extend_zero_is_noop(self):
        bm = Bitmap()
        bm.extend(0)
        assert len(bm) == 0

    def test_extend_negative_raises(self):
        with pytest.raises(StorageError):
            Bitmap().extend(-1)

    def test_growth_beyond_capacity(self):
        bm = Bitmap(initial_capacity=2)
        bm.extend(1000, value=True)
        assert len(bm) == 1000
        assert bm.count_set() == 1000
        assert bm.capacity >= 1000

    def test_bad_capacity(self):
        with pytest.raises(StorageError):
            Bitmap(initial_capacity=0)


class TestPointOps:
    def test_getitem(self):
        bm = Bitmap()
        bm.extend(3, value=True)
        bm.clear(1)
        assert bm[0] is True and bm[1] is False and bm[2] is True

    def test_getitem_out_of_range(self):
        bm = Bitmap()
        bm.extend(3)
        with pytest.raises(IndexError):
            bm[3]
        with pytest.raises(IndexError):
            bm[-1]

    def test_set_clear_idempotent(self):
        bm = Bitmap()
        bm.extend(2, value=False)
        bm.set(0)
        bm.set(0)
        assert bm.count_set() == 1
        bm.clear(0)
        bm.clear(0)
        assert bm.count_set() == 0


class TestBulkOps:
    def test_clear_many_counts_flips(self):
        bm = Bitmap()
        bm.extend(10, value=True)
        flipped = bm.clear_many(np.array([1, 3, 3, 5]))
        # Position 3 flips once; duplicates in one call are harmless.
        assert flipped == 3
        assert bm.count_set() == 7

    def test_set_many_counts_flips(self):
        bm = Bitmap()
        bm.extend(5, value=False)
        assert bm.set_many(np.array([0, 1])) == 2
        assert bm.set_many(np.array([1, 2])) == 1

    def test_bulk_empty_is_noop(self):
        bm = Bitmap()
        bm.extend(5)
        assert bm.clear_many(np.empty(0, dtype=np.int64)) == 0

    def test_bulk_out_of_range(self):
        bm = Bitmap()
        bm.extend(5)
        with pytest.raises(IndexError):
            bm.clear_many(np.array([5]))
        with pytest.raises(IndexError):
            bm.set_many(np.array([-1]))

    def test_test_many(self):
        bm = Bitmap()
        bm.extend(4, value=True)
        bm.clear(2)
        assert bm.test_many(np.array([0, 2])).tolist() == [True, False]


class TestViews:
    def test_view_is_readonly(self):
        bm = Bitmap()
        bm.extend(4)
        view = bm.view()
        with pytest.raises(ValueError):
            view[0] = False

    def test_view_reflects_changes(self):
        bm = Bitmap()
        bm.extend(4, value=True)
        view = bm.view()
        bm.clear(0)
        assert view[0] == np.False_

    def test_to_array_is_copy(self):
        bm = Bitmap()
        bm.extend(4, value=True)
        arr = bm.to_array()
        bm.clear(0)
        assert arr[0] == np.True_

    def test_positions(self):
        bm = Bitmap()
        bm.extend(6, value=True)
        bm.clear_many(np.array([0, 2, 4]))
        assert bm.set_positions().tolist() == [1, 3, 5]
        assert bm.clear_positions().tolist() == [0, 2, 4]

    def test_iter(self):
        bm = Bitmap()
        bm.extend(3, value=True)
        bm.clear(1)
        assert list(bm) == [True, False, True]

    def test_repr(self):
        bm = Bitmap()
        bm.extend(3, value=True)
        assert "3" in repr(bm)
