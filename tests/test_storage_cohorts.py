"""Tests for repro.storage.cohorts."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import StorageError
from repro.storage import Cohort, CohortLog


class TestCohort:
    def test_size_and_positions(self):
        cohort = Cohort(epoch=2, start=10, stop=15)
        assert cohort.size == 5
        assert cohort.positions().tolist() == [10, 11, 12, 13, 14]

    def test_contains(self):
        cohort = Cohort(epoch=0, start=0, stop=3)
        assert 0 in cohort and 2 in cohort
        assert 3 not in cohort


class TestCohortLog:
    def test_record_and_lookup(self):
        log = CohortLog()
        log.record(0, 0, 100)
        log.record(1, 100, 120)
        assert len(log) == 2
        assert log.total_rows == 120
        assert log.latest_epoch == 1
        assert log.by_epoch(1).size == 20

    def test_record_enforces_contiguity(self):
        log = CohortLog()
        log.record(0, 0, 10)
        with pytest.raises(StorageError):
            log.record(1, 11, 20)

    def test_record_enforces_epoch_order(self):
        log = CohortLog()
        log.record(1, 0, 10)
        with pytest.raises(StorageError):
            log.record(1, 10, 20)
        with pytest.raises(StorageError):
            log.record(0, 10, 20)

    def test_record_rejects_reversed_range(self):
        with pytest.raises(StorageError):
            CohortLog().record(0, 0, -1)

    def test_empty_cohort_allowed(self):
        log = CohortLog()
        log.record(0, 0, 0)
        assert log.total_rows == 0
        assert log[0].size == 0

    def test_epoch_of_vectorised(self):
        log = CohortLog()
        log.record(0, 0, 100)
        log.record(3, 100, 150)
        log.record(7, 150, 160)
        out = log.epoch_of(np.array([0, 99, 100, 149, 150, 159]))
        assert out.tolist() == [0, 0, 3, 3, 7, 7]

    def test_epoch_of_empty(self):
        log = CohortLog()
        log.record(0, 0, 5)
        assert log.epoch_of(np.empty(0, dtype=np.int64)).size == 0

    def test_epoch_of_out_of_range(self):
        log = CohortLog()
        log.record(0, 0, 5)
        with pytest.raises(IndexError):
            log.epoch_of(np.array([5]))

    def test_by_epoch_missing(self):
        log = CohortLog()
        log.record(0, 0, 5)
        with pytest.raises(KeyError):
            log.by_epoch(9)

    def test_iteration_and_epochs(self):
        log = CohortLog()
        log.record(0, 0, 5)
        log.record(2, 5, 8)
        assert [c.epoch for c in log] == [0, 2]
        assert log.epochs() == [0, 2]

    def test_empty_log_properties(self):
        log = CohortLog()
        assert log.total_rows == 0
        assert log.latest_epoch == -1


class TestCohortZoneMap:
    def _table(self):
        from repro.storage import Table

        table = Table("t", ["a", "b"])
        table.insert_batch(0, {"a": [5, 7, 9], "b": [50, 70, 90]})
        table.insert_batch(1, {"a": [100, 110], "b": [1, 2]})
        return table

    def test_tracks_bounds_and_active_counts(self):
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table)
        mins, maxs = zm.bounds("a")
        assert mins.tolist() == [5, 100]
        assert maxs.tolist() == [9, 110]
        assert zm.active_counts().tolist() == [3, 2]
        assert zm.cohort_count == 2
        assert zm.covers("a") and zm.covers("b")

    def test_candidate_ranges_prune_by_value(self):
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table)
        assert zm.candidate_ranges("a", 0, 50) == [(0, 3)]
        assert zm.candidate_ranges("a", 105, 200) == [(3, 5)]
        assert zm.candidate_ranges("a", 0, 200) == [(0, 3), (3, 5)]
        assert zm.candidate_ranges("a", 20, 90) == []

    def test_forget_updates_counts_not_bounds(self):
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table)
        table.forget(np.array([0, 1, 2]), epoch=2)
        assert zm.active_counts().tolist() == [0, 2]
        # Bounds stay as safe insert-time zones.
        mins, _ = zm.bounds("a")
        assert mins.tolist() == [5, 100]
        assert zm.candidate_ranges("a", 0, 50, require="active") == []
        assert zm.candidate_ranges("a", 0, 50, require="forgotten") == [(0, 3)]
        assert zm.candidate_ranges("a", 105, 200, require="forgotten") == []

    def test_late_attachment_backfills_history(self):
        """A zone map attached after inserts AND forgets is immediately exact."""
        from repro.storage import CohortZoneMap

        table = self._table()
        table.forget(np.array([1, 3]), epoch=2)
        zm = CohortZoneMap(table)
        mins, maxs = zm.bounds("a")
        assert mins.tolist() == [5, 100]
        assert maxs.tolist() == [9, 110]
        assert zm.active_counts().tolist() == [2, 1]

    def test_incremental_matches_late_attachment(self):
        """Observer-maintained stats equal stats rebuilt from scratch."""
        from repro.storage import CohortZoneMap, Table

        rng = np.random.default_rng(3)
        live = Table("live", ["a"])
        zm_live = CohortZoneMap(live)
        for epoch in range(6):
            live.insert_batch(epoch, {"a": rng.integers(0, 1000, 40)})
            victims = np.flatnonzero(rng.random(live.total_rows) < 0.2)
            live.forget(victims, epoch=epoch)
        zm_late = CohortZoneMap(live)
        assert zm_live.active_counts().tolist() == zm_late.active_counts().tolist()
        assert zm_live.bounds("a")[0].tolist() == zm_late.bounds("a")[0].tolist()
        assert zm_live.bounds("a")[1].tolist() == zm_late.bounds("a")[1].tolist()

    def test_unknown_column_and_bad_require(self):
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table, columns=["a"])
        assert not zm.covers("b")
        with pytest.raises(StorageError):
            zm.candidate_ranges("b", 0, 10)
        with pytest.raises(StorageError):
            zm.candidate_ranges("a", 0, 10, require="nope")
        with pytest.raises(StorageError):
            CohortZoneMap(table, columns=[])

    def test_pruned_fraction_and_nbytes(self):
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table)
        assert zm.pruned_fraction("a", 0, 50) == pytest.approx(2 / 5)
        assert zm.nbytes() > 0

    def test_reregistration_replay_is_idempotent(self):
        """remove + re-add must not corrupt counts (backfill replays)."""
        from repro.storage import CohortZoneMap

        table = self._table()
        zm = CohortZoneMap(table)
        table.forget(np.array([0]), epoch=2)
        before = zm.active_counts().tolist()
        table.remove_observer(zm)
        table.add_observer(zm)  # backfill replays all history
        assert zm.active_counts().tolist() == before == [2, 2]
        assert zm.candidate_ranges("a", 0, 50, require="forgotten") == [(0, 3)]


class TestCohortLogIndexOf:
    def test_index_of_vectorised(self):
        log = CohortLog()
        log.record(0, 0, 100)
        log.record(1, 100, 120)
        assert log.index_of(np.array([0, 99, 100, 119])).tolist() == [0, 0, 1, 1]

    def test_index_of_empty_and_bounds(self):
        log = CohortLog()
        log.record(0, 0, 10)
        assert log.index_of(np.array([], dtype=np.int64)).size == 0
        with pytest.raises(IndexError):
            log.index_of(np.array([10]))


class TestCardinalityEstimate:
    def _table(self):
        from repro.storage import Table

        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(0, 100)})      # span [0, 99]
        table.insert_batch(1, {"a": np.arange(200, 250)})    # span [200, 249]
        table.forget(np.arange(0, 50), epoch=2)              # half of cohort 0
        return table

    def test_exact_pruned_scan_costs(self):
        from repro.storage import CohortZoneMap

        zm = CohortZoneMap(self._table())
        estimate = zm.estimate("a", 0, 100)
        assert estimate.candidate_rows == 100          # cohort 0 only
        assert estimate.forgotten_candidate_rows == 100
        estimate = zm.estimate("a", 200, 250)
        assert estimate.candidate_rows == 50           # cohort 1 only
        assert estimate.forgotten_candidate_rows == 0  # nothing forgotten there

    def test_uniform_interpolation_of_matches(self):
        from repro.storage import CohortZoneMap

        zm = CohortZoneMap(self._table())
        # Probe half of cohort 0's value span: expect ~half its rows.
        estimate = zm.estimate("a", 0, 50)
        assert estimate.est_active == pytest.approx(25.0)
        assert estimate.est_forgotten == pytest.approx(25.0)
        assert estimate.est_rows == pytest.approx(50.0)

    def test_disjoint_probe_estimates_zero(self):
        from repro.storage import CohortZoneMap

        zm = CohortZoneMap(self._table())
        estimate = zm.estimate("a", 300, 400)
        assert estimate.candidate_rows == 0
        assert estimate.est_rows == 0.0

    def test_untracked_column_rejected(self):
        from repro.storage import CohortZoneMap

        zm = CohortZoneMap(self._table())
        with pytest.raises(StorageError):
            zm.estimate("missing", 0, 10)

    def test_empty_table_estimates_zero(self):
        from repro.storage import CohortZoneMap, Table

        table = Table("t", ["a"])
        zm = CohortZoneMap(table)
        estimate = zm.estimate("a", 0, 10)
        assert estimate.candidate_rows == 0
        assert estimate.est_rows == 0.0
