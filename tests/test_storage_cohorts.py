"""Tests for repro.storage.cohorts."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import StorageError
from repro.storage import Cohort, CohortLog


class TestCohort:
    def test_size_and_positions(self):
        cohort = Cohort(epoch=2, start=10, stop=15)
        assert cohort.size == 5
        assert cohort.positions().tolist() == [10, 11, 12, 13, 14]

    def test_contains(self):
        cohort = Cohort(epoch=0, start=0, stop=3)
        assert 0 in cohort and 2 in cohort
        assert 3 not in cohort


class TestCohortLog:
    def test_record_and_lookup(self):
        log = CohortLog()
        log.record(0, 0, 100)
        log.record(1, 100, 120)
        assert len(log) == 2
        assert log.total_rows == 120
        assert log.latest_epoch == 1
        assert log.by_epoch(1).size == 20

    def test_record_enforces_contiguity(self):
        log = CohortLog()
        log.record(0, 0, 10)
        with pytest.raises(StorageError):
            log.record(1, 11, 20)

    def test_record_enforces_epoch_order(self):
        log = CohortLog()
        log.record(1, 0, 10)
        with pytest.raises(StorageError):
            log.record(1, 10, 20)
        with pytest.raises(StorageError):
            log.record(0, 10, 20)

    def test_record_rejects_reversed_range(self):
        with pytest.raises(StorageError):
            CohortLog().record(0, 0, -1)

    def test_empty_cohort_allowed(self):
        log = CohortLog()
        log.record(0, 0, 0)
        assert log.total_rows == 0
        assert log[0].size == 0

    def test_epoch_of_vectorised(self):
        log = CohortLog()
        log.record(0, 0, 100)
        log.record(3, 100, 150)
        log.record(7, 150, 160)
        out = log.epoch_of(np.array([0, 99, 100, 149, 150, 159]))
        assert out.tolist() == [0, 0, 3, 3, 7, 7]

    def test_epoch_of_empty(self):
        log = CohortLog()
        log.record(0, 0, 5)
        assert log.epoch_of(np.empty(0, dtype=np.int64)).size == 0

    def test_epoch_of_out_of_range(self):
        log = CohortLog()
        log.record(0, 0, 5)
        with pytest.raises(IndexError):
            log.epoch_of(np.array([5]))

    def test_by_epoch_missing(self):
        log = CohortLog()
        log.record(0, 0, 5)
        with pytest.raises(KeyError):
            log.by_epoch(9)

    def test_iteration_and_epochs(self):
        log = CohortLog()
        log.record(0, 0, 5)
        log.record(2, 5, 8)
        assert [c.epoch for c in log] == [0, 2]
        assert log.epochs() == [0, 2]

    def test_empty_log_properties(self):
        log = CohortLog()
        assert log.total_rows == 0
        assert log.latest_epoch == -1
