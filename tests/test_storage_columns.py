"""Tests for repro.storage.column and repro.storage.vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError, StorageError
from repro.storage import GrowableIntVector, IntColumn


class TestIntColumn:
    def test_empty(self):
        col = IntColumn("a")
        assert len(col) == 0
        assert col.nbytes() == 0

    def test_requires_name(self):
        with pytest.raises(StorageError):
            IntColumn("")

    def test_append_returns_position(self):
        col = IntColumn("a")
        assert col.append(5) == 0
        assert col.append(7) == 1
        assert col[0] == 5 and col[1] == 7

    def test_append_many(self):
        col = IntColumn("a")
        col.append_many([3, 1, 2])
        col.append_many(np.array([9]))
        assert col.values().tolist() == [3, 1, 2, 9]

    def test_append_many_empty(self):
        col = IntColumn("a")
        col.append_many([])
        assert len(col) == 0

    def test_append_rejects_fractional(self):
        col = IntColumn("a")
        with pytest.raises(ConfigError):
            col.append_many(np.array([1.5]))

    def test_growth(self):
        col = IntColumn("a", initial_capacity=1)
        col.append_many(np.arange(10_000))
        assert len(col) == 10_000
        assert col.values()[-1] == 9_999

    def test_values_view_readonly(self):
        col = IntColumn("a")
        col.append_many([1, 2])
        with pytest.raises(ValueError):
            col.values()[0] = 9

    def test_getitem_bounds(self):
        col = IntColumn("a")
        col.append_many([1])
        with pytest.raises(IndexError):
            col[1]

    def test_take(self):
        col = IntColumn("a")
        col.append_many([10, 20, 30])
        assert col.take(np.array([2, 0])).tolist() == [30, 10]

    def test_take_empty(self):
        col = IntColumn("a")
        col.append_many([1])
        assert col.take(np.empty(0, dtype=np.int64)).size == 0

    def test_take_out_of_range(self):
        col = IntColumn("a")
        col.append_many([1])
        with pytest.raises(IndexError):
            col.take(np.array([1]))

    def test_min_max(self):
        col = IntColumn("a")
        col.append_many([5, -2, 9])
        assert col.min() == -2
        assert col.max() == 9

    def test_min_empty_raises(self):
        with pytest.raises(StorageError):
            IntColumn("a").min()

    def test_nbytes(self):
        col = IntColumn("a")
        col.append_many(np.arange(4))
        assert col.nbytes() == 32


class TestGrowableIntVector:
    def test_extend_with_fill(self):
        vec = GrowableIntVector(fill=7)
        vec.extend(3)
        assert vec.values().tolist() == [7, 7, 7]

    def test_extend_with_value(self):
        vec = GrowableIntVector(fill=0)
        vec.extend(2, value=5)
        assert vec.values().tolist() == [5, 5]

    def test_extend_with_array(self):
        vec = GrowableIntVector()
        vec.extend_with([1, 2, 3])
        assert vec.values().tolist() == [1, 2, 3]

    def test_extend_with_rejects_2d(self):
        with pytest.raises(StorageError):
            GrowableIntVector().extend_with(np.zeros((2, 2), dtype=np.int64))

    def test_set_at(self):
        vec = GrowableIntVector()
        vec.extend(4)
        vec.set_at(np.array([1, 3]), 9)
        assert vec.values().tolist() == [0, 9, 0, 9]

    def test_add_at_accumulates_duplicates(self):
        vec = GrowableIntVector()
        vec.extend(3)
        vec.add_at(np.array([1, 1, 2]), 1)
        assert vec.values().tolist() == [0, 2, 1]

    def test_take(self):
        vec = GrowableIntVector()
        vec.extend_with([10, 20, 30])
        assert vec.take(np.array([2, 1])).tolist() == [30, 20]

    def test_getitem(self):
        vec = GrowableIntVector()
        vec.extend_with([4, 5])
        assert vec[1] == 5
        with pytest.raises(IndexError):
            vec[2]

    def test_out_of_range_updates(self):
        vec = GrowableIntVector()
        vec.extend(2)
        with pytest.raises(IndexError):
            vec.set_at(np.array([2]), 1)

    def test_growth_preserves_fill(self):
        vec = GrowableIntVector(fill=-1, initial_capacity=1)
        vec.extend(100)
        assert (vec.values() == -1).all()

    def test_negative_extend(self):
        with pytest.raises(StorageError):
            GrowableIntVector().extend(-1)
