"""Tests for table/store checkpointing (repro.storage.io)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AmnesiaDatabase
from repro._util.errors import StorageError
from repro.amnesia.registry import POLICY_NAMES, make_policy
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.storage import (
    Catalog,
    Table,
    load_store,
    load_table,
    save_store,
    save_table,
)


def _make_policy(name):
    kwargs = {"column": "k"} if name in ("pair", "dist", "stratified") else {}
    return make_policy(name, **kwargs)


def _table_fingerprint(table):
    """Every persisted observable of a table, as comparable lists."""
    return {
        "name": table.name,
        "columns": table.column_names,
        "values": {
            name: table.values(name).tolist() for name in table.column_names
        },
        "active": table.active_mask().tolist(),
        "insert_epochs": table.insert_epochs().tolist(),
        "forgotten_epochs": table.forgotten_epochs().tolist(),
        "access_counts": table.access_counts().tolist(),
        "last_access": table.last_access_epochs().tolist(),
        "cohorts": table.cohorts.epochs(),
        "cohort_activity": table.cohort_activity(),
    }


@pytest.fixture
def rich_table(rng):
    """A table with several cohorts, forgets and access counts."""
    table = Table("events", ["k", "v"])
    for epoch in range(4):
        table.insert_batch(
            epoch,
            {
                "k": rng.integers(0, 100, 50),
                "v": rng.integers(0, 10_000, 50),
            },
        )
        active = table.active_positions()
        victims = rng.choice(active, 10, replace=False)
        table.forget(victims, epoch=epoch)
        table.record_access(rng.choice(table.active_positions(), 20), epoch)
    return table


class TestRoundTrip:
    def test_everything_survives(self, rich_table, tmp_path):
        path = save_table(rich_table, tmp_path / "t.npz")
        restored = load_table(path)

        assert restored.name == rich_table.name
        assert restored.column_names == rich_table.column_names
        assert restored.total_rows == rich_table.total_rows
        assert restored.active_count == rich_table.active_count
        for name in rich_table.column_names:
            assert np.array_equal(restored.values(name), rich_table.values(name))
        assert np.array_equal(restored.active_mask(), rich_table.active_mask())
        assert np.array_equal(
            restored.insert_epochs(), rich_table.insert_epochs()
        )
        assert np.array_equal(
            restored.forgotten_epochs(), rich_table.forgotten_epochs()
        )
        assert np.array_equal(
            restored.access_counts(), rich_table.access_counts()
        )
        assert np.array_equal(
            restored.last_access_epochs(), rich_table.last_access_epochs()
        )

    def test_cohorts_survive(self, rich_table, tmp_path):
        restored = load_table(save_table(rich_table, tmp_path / "t.npz"))
        assert restored.cohorts.epochs() == rich_table.cohorts.epochs()
        assert restored.cohort_activity() == rich_table.cohort_activity()

    def test_restored_table_is_usable(self, rich_table, tmp_path):
        """A restored table keeps simulating seamlessly."""
        restored = load_table(save_table(rich_table, tmp_path / "t.npz"))
        positions = restored.insert_batch(
            99, {"k": [1, 2], "v": [3, 4]}
        )
        assert positions.size == 2
        restored.forget(positions[:1], epoch=99)
        assert restored.forgotten_epochs()[positions[0]] == 99

    def test_fresh_table_roundtrip(self, tmp_path):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [1]})
        restored = load_table(save_table(table, tmp_path / "f.npz"))
        assert restored.total_rows == 1
        assert restored.active_count == 1


@st.composite
def table_histories(draw):
    """A random cohort schedule: (size, forget seed/fraction, accesses)."""
    return draw(
        st.lists(
            st.tuples(
                st.integers(0, 40),       # cohort size (0 = empty batch skip)
                st.integers(0, 2**16),    # forget rng seed
                st.floats(0.0, 0.7),      # forget fraction
                st.floats(0.0, 0.9),      # access fraction
            ),
            min_size=0,
            max_size=6,
        )
    )


class TestRoundTripProperties:
    """Property tests: whatever history a table lived through — any mix
    of cohorts, forgets and access traffic, including the empty and
    single-cohort edges — the checkpoint restores it bit-identically."""

    @given(table_histories())
    @settings(
        max_examples=30,
        deadline=None,
        # tmp_path is function-scoped; the checkpoint file is unlinked
        # after every example, so reuse across examples is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_history_roundtrips(self, tmp_path, history):
        table = Table("events", ["k", "v"])
        for epoch, (size, seed, forget_frac, access_frac) in enumerate(
            history
        ):
            step_rng = np.random.default_rng(seed)
            if size:
                table.insert_batch(
                    epoch,
                    {
                        "k": step_rng.integers(0, 100, size),
                        "v": step_rng.integers(0, 10_000, size),
                    },
                )
            if table.total_rows:
                victims = np.flatnonzero(
                    step_rng.random(table.total_rows) < forget_frac
                )
                table.forget(victims, epoch=epoch)
            active = table.active_positions()
            touched = np.flatnonzero(
                step_rng.random(active.size) < access_frac
            )
            if touched.size:
                table.record_access(active[touched], epoch)
        path = save_table(table, tmp_path / "prop.npz")
        restored = load_table(path)
        assert _table_fingerprint(restored) == _table_fingerprint(table)
        path.unlink()  # hypothesis reuses tmp_path across examples

    def test_empty_table_roundtrips(self, tmp_path):
        table = Table("empty", ["k"])
        restored = load_table(save_table(table, tmp_path / "e.npz"))
        assert _table_fingerprint(restored) == _table_fingerprint(table)
        assert restored.total_rows == 0

    def test_single_cohort_roundtrips(self, tmp_path):
        table = Table("one", ["k"])
        table.insert_batch(3, {"k": [5, 6, 7]})
        restored = load_table(save_table(table, tmp_path / "o.npz"))
        assert _table_fingerprint(restored) == _table_fingerprint(table)
        assert restored.cohorts.epochs() == [3]


class TestDatabaseRoundTrip:
    """save_store/load_store on the single-table amnesia facade."""

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_every_policy_state_roundtrips(self, policy_name, tmp_path):
        """Forgotten rows, access metadata and cohort history restore
        bit-identically whatever amnesia policy produced them."""
        db = AmnesiaDatabase(
            budget=60, policy=_make_policy(policy_name), columns=("k",), seed=11
        )
        rng = np.random.default_rng(5)
        for _ in range(4):
            db.insert({"k": rng.integers(0, 500, 25)})
            db.range_query("k", 100, 300)
        path = db.checkpoint(tmp_path / "db.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy(policy_name)
        )
        assert isinstance(restored, AmnesiaDatabase)
        assert restored.epoch == db.epoch
        assert restored.budget == db.budget
        assert restored.policy.name == db.policy.name
        assert _table_fingerprint(restored.table) == _table_fingerprint(
            db.table
        )

    @pytest.mark.parametrize("policy_name", ("fifo", "rot", "uniform"))
    def test_restored_run_continues_bit_identically(
        self, policy_name, tmp_path
    ):
        """Stateless policies resume exactly — including randomized
        ones, whose victim-selection stream position is checkpointed:
        the restored database answers every later query like the
        uncheckpointed original."""

        def drive(db, rng):
            observed = []
            for _ in range(3):
                db.insert({"k": rng.integers(0, 500, 30)})
                for low in (0, 150, 350):
                    result = db.range_query("k", low, low + 100)
                    observed.append((result.rf, result.mf, result.precision))
            observed.append(_table_fingerprint(db.table))
            return observed

        db = AmnesiaDatabase(
            budget=50, policy=_make_policy(policy_name), columns=("k",), seed=3
        )
        warm = np.random.default_rng(9)
        for _ in range(3):
            db.insert({"k": warm.integers(0, 500, 30)})
            db.range_query("k", 50, 250)
        path = db.checkpoint(tmp_path / "mid.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy(policy_name)
        )
        assert drive(restored, np.random.default_rng(77)) == drive(
            db, np.random.default_rng(77)
        )


class TestShardedRoundTrip:
    """save_store/load_store on the partitioned store (acceptance
    criterion: a checkpoint saved mid-run restores to a store whose
    subsequent query results are bit-identical)."""

    def _build(self, workers=2):
        return PartitionedAmnesiaDatabase(
            "k",
            (0, 250, 500, 1000),
            total_budget=120,
            policy_factory=lambda: _make_policy("fifo"),
            seed=9,
            workers=workers,
            rebalance="adaptive",
            split_threshold=1.5,
            stats="hist",
        )

    def _warm(self, store):
        rng = np.random.default_rng(3)
        for _ in range(4):
            store.insert({"k": rng.integers(-100, 1100, 60)})
            # Heavily skewed toward the low shard so the adaptive
            # rebalances below cut boundaries mid-run.
            for low, width in ((0, 200), (10, 80), (20, 60), (600, 50)):
                store.range_query(low, low + width)
            store.rebalance(floor=5)

    def test_mid_run_checkpoint_continues_bit_identically(self, tmp_path):
        store = self._build()
        self._warm(store)
        assert any("split shard" in e for e in store.adaptations)
        path = store.checkpoint(tmp_path / "store.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )

        assert restored.boundaries == store.boundaries
        assert restored.adaptations == store.adaptations
        assert restored.ingest_epoch == store.ingest_epoch
        for got, want in zip(restored.partitions, store.partitions):
            assert (got.low, got.high, got.budget) == (
                want.low, want.high, want.budget,
            )
            assert (got.query_hits, got.query_rows) == (
                want.query_hits, want.query_rows,
            )
            assert _table_fingerprint(got.db.table) == _table_fingerprint(
                want.db.table
            )

        def drive(target):
            rng = np.random.default_rng(41)
            observed = []
            for _ in range(3):
                target.insert({"k": rng.integers(-100, 1100, 60)})
                for low, width in ((0, 150), (10, 80), (500, 400)):
                    result = target.range_query(low, low + width)
                    observed.append((result.rf, result.mf, result.precision))
                observed.append(target.rebalance(floor=5))
                observed.append(target.boundaries)
            observed.append(target.adaptations)
            for partition in target.partitions:
                observed.append(_table_fingerprint(partition.db.table))
            return observed

        assert drive(restored) == drive(store)
        store.close()
        restored.close()

    def test_checkpoint_publishes_pending_batches(self, tmp_path):
        """Queued-but-unflushed rows are flushed into the checkpoint —
        a restore never resurrects a half-submitted batch."""
        store = self._build()
        store.enqueue({"k": np.arange(100)})
        assert store.pending_batches == 1
        path = store.checkpoint(tmp_path / "pending.npz")
        assert store.pending_batches == 0
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        result = restored.range_query(0, 1000)
        assert result.rf + result.mf == 100
        assert restored.ingest_epoch == store.ingest_epoch == 1
        store.close()
        restored.close()


class TestCompressedRoundTrip:
    """Checkpoint format v3: compressed blocks restore without
    re-encoding and the restored store answers bit-identically."""

    def _build_db(self):
        db = AmnesiaDatabase(
            budget=60,
            policy=_make_policy("fifo"),
            columns=("k",),
            seed=11,
            plan="cost",
            compress="on",
        )
        rng = np.random.default_rng(5)
        for _ in range(5):
            db.insert({"k": rng.integers(0, 500, 25)})
            db.range_query("k", 100, 300)
        return db

    def test_database_blocks_survive(self, tmp_path):
        db = self._build_db()
        assert db.compressed is not None and db.compressed.demoted_count > 0
        path = db.checkpoint(tmp_path / "c.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        assert restored.compress_mode == "on"
        assert restored.compressed is not None
        got, want = restored.compressed, db.compressed
        assert got.demoted_count == want.demoted_count
        assert got.compressed_nbytes() == want.compressed_nbytes()
        assert got.byte_report() == want.byte_report()
        for ordinal in range(want.demoted_count):
            assert np.array_equal(
                got.decode(ordinal, "k"), want.decode(ordinal, "k")
            )
            assert got.bounds_at(ordinal, "k") == want.bounds_at(
                ordinal, "k"
            )

    def test_restored_run_continues_bit_identically(self, tmp_path):
        def drive(db, rng):
            observed = []
            for _ in range(3):
                db.insert({"k": rng.integers(0, 500, 25)})
                for low in (0, 150, 350):
                    result = db.range_query("k", low, low + 100)
                    observed.append((result.rf, result.mf, result.precision))
            observed.append(_table_fingerprint(db.table))
            observed.append(db.compressed.demoted_count)
            return observed

        db = self._build_db()
        path = db.checkpoint(tmp_path / "mid.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        assert drive(restored, np.random.default_rng(77)) == drive(
            db, np.random.default_rng(77)
        )

    def test_sharded_blocks_survive(self, tmp_path):
        store = PartitionedAmnesiaDatabase(
            "k",
            (0, 250, 500, 1000),
            total_budget=120,
            policy_factory=lambda: _make_policy("fifo"),
            seed=9,
            plan="cost",
            compress="on",
        )
        rng = np.random.default_rng(3)
        for _ in range(5):
            store.insert({"k": rng.integers(-100, 1100, 60)})
            store.range_query(0, 300)
        demoted = [
            p.db.compressed.demoted_count for p in store.partitions
        ]
        assert sum(demoted) > 0
        path = store.checkpoint(tmp_path / "s.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        assert restored.compress_mode == "on"
        for got, want in zip(restored.partitions, store.partitions):
            g, w = got.db.compressed, want.db.compressed
            assert g.demoted_count == w.demoted_count
            assert g.compressed_nbytes() == w.compressed_nbytes()
        def probe(target):
            out = []
            for low, width in ((0, 150), (10, 80), (500, 400)):
                result = target.range_query(low, low + width)
                out.append((result.rf, result.mf, result.precision))
            return out
        assert probe(restored) == probe(store)
        store.close()
        restored.close()

    def test_compress_off_checkpoints_stay_lean(self, tmp_path):
        """A compress=off database writes no block payloads and
        restores with no store."""
        db = AmnesiaDatabase(
            budget=30, policy=_make_policy("fifo"), columns=("k",), seed=1
        )
        db.insert({"k": np.arange(20)})
        path = db.checkpoint(tmp_path / "off.npz")
        with np.load(path) as bundle:
            assert not [n for n in bundle.files if "cb" in n]
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        assert restored.compress_mode == "off"
        assert restored.compressed is None


class TestCatalogRoundTrip:
    def test_catalog_with_sharded_member_roundtrips(self, tmp_path):
        catalog = Catalog(workers=2)
        events = catalog.create_table("events", ["k"])
        rng = np.random.default_rng(19)
        for epoch in range(3):
            events.insert_batch(epoch, {"k": rng.integers(0, 400, 25)})
        events.forget(np.arange(0, 60, 3), epoch=3)
        store = PartitionedAmnesiaDatabase(
            "k",
            (0, 200, 400),
            total_budget=80,
            policy_factory=lambda: _make_policy("fifo"),
            seed=7,
            workers=2,
        )
        catalog.register_sharded("s", store)
        store.insert({"k": rng.integers(0, 400, 50)})

        path = catalog.checkpoint(tmp_path / "cat.npz")
        restored = load_store(
            path, policy_factory=lambda: _make_policy("fifo")
        )
        assert isinstance(restored, Catalog)
        assert sorted(restored.names()) == sorted(catalog.names())
        assert restored.sharded_names() == catalog.sharded_names()
        assert _table_fingerprint(restored.get("events")) == (
            _table_fingerprint(events)
        )
        for spec in ("union:events,s", "join:events,s:on=value"):
            want = catalog.query(spec, epoch=5)
            got = restored.query(spec, epoch=5)
            assert got.rows.tolist() == want.rows.tolist()
            assert got.forgotten.tolist() == want.forgotten.tolist()
        store.close()
        catalog.close()
        restored.close()

    def test_tables_only_catalog_needs_no_factory(self, tmp_path):
        catalog = Catalog()
        t = catalog.create_table("t", ["k"])
        t.insert_batch(0, {"k": [1, 2, 3]})
        restored = load_store(catalog.checkpoint(tmp_path / "c.npz"))
        assert _table_fingerprint(restored.get("t")) == _table_fingerprint(t)
        catalog.close()
        restored.close()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_table(tmp_path / "nope.npz")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(StorageError):
            load_table(path)

    def test_truncated_file_raises_storage_error(self, rich_table, tmp_path):
        """A torn write surfaces as StorageError, not a numpy traceback."""
        path = save_table(rich_table, tmp_path / "torn.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(StorageError, match="not a readable checkpoint"):
            load_store(path)

    def test_corrupt_bytes_raise_storage_error(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"\x00\x01garbage" * 40)
        with pytest.raises(StorageError):
            load_store(path)

    def test_old_format_version_is_refused_clearly(self, tmp_path):
        import json

        header = json.dumps({"format_version": 1, "kind": "table"})
        path = tmp_path / "v1.npz"
        np.savez(
            path, header=np.frombuffer(header.encode(), dtype=np.uint8)
        )
        with pytest.raises(StorageError, match="format 1"):
            load_store(path)

    def test_format_2_is_refused_clearly(self, tmp_path):
        """Format 2 predates compressed-block payloads; a v2 file must
        be refused with a re-create hint, not half-restored."""
        import json

        header = json.dumps({"format_version": 2, "kind": "database"})
        path = tmp_path / "v2.npz"
        np.savez(
            path, header=np.frombuffer(header.encode(), dtype=np.uint8)
        )
        with pytest.raises(StorageError, match="format 2"):
            load_store(path)

    def test_load_table_refuses_store_checkpoints(self, tmp_path):
        db = AmnesiaDatabase(
            budget=20, policy=_make_policy("fifo"), columns=("k",), seed=1
        )
        db.insert({"k": [1, 2, 3]})
        path = db.checkpoint(tmp_path / "db.npz")
        with pytest.raises(StorageError):
            load_table(path)

    def test_database_restore_requires_policy_factory(self, tmp_path):
        db = AmnesiaDatabase(
            budget=20, policy=_make_policy("fifo"), columns=("k",), seed=1
        )
        db.insert({"k": [1, 2, 3]})
        path = db.checkpoint(tmp_path / "db.npz")
        with pytest.raises(StorageError, match="policy_factory"):
            load_store(path)

    def test_unknown_store_type_is_refused(self, tmp_path):
        with pytest.raises(StorageError, match="cannot checkpoint"):
            save_store(object(), tmp_path / "x.npz")


class TestSimulatorCheckpoint:
    def test_checkpointed_simulation_state(self, tmp_path):
        """Save mid-run, restore, and verify the amnesia state is intact."""
        from repro import AmnesiaSimulator, SimulationConfig
        from repro.amnesia import RotAmnesia
        from repro.datagen import UniformDistribution

        simulator = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=4, queries_per_epoch=20),
            UniformDistribution(1000),
            RotAmnesia(),
        )
        simulator.load_initial()
        simulator.step()
        simulator.step()

        restored = load_table(save_table(simulator.table, tmp_path / "sim.npz"))
        assert restored.active_count == 100
        assert np.array_equal(
            restored.access_counts(), simulator.table.access_counts()
        )


class TestDurability:
    """Format 4: atomic writes, checksummed manifest, recovery."""

    def _two_state_table(self):
        first = Table("obs", ["a"])
        first.insert_batch(0, {"a": list(range(50))})
        return first

    def test_crash_mid_save_leaves_previous_checkpoint_byte_identical(
        self, tmp_path
    ):
        """The atomic-write regression: a crash injected mid-save (tmp
        written, nothing renamed) must leave the previous checkpoint
        loadable byte-for-byte."""
        from repro import faults

        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz")
        before = path.read_bytes()
        table.insert_batch(1, {"a": list(range(50, 90))})
        with faults.armed("checkpoint.tmp:crash"):
            with pytest.raises(faults.FaultInjected):
                save_table(table, path, rotate=True)
        assert path.read_bytes() == before
        assert load_table(path).total_rows == 50

    @pytest.mark.parametrize(
        "point", ["checkpoint.tmp", "checkpoint.rotate", "checkpoint.done"]
    )
    def test_crash_at_every_checkpoint_point_recovers(self, tmp_path, point):
        """No injected crash can leave a state recover_store refuses to
        load — and what it loads is a complete snapshot (the old or the
        new), never a torn mixture."""
        from repro import faults
        from repro.storage import recover_store

        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz", rotate=True)
        table.insert_batch(1, {"a": list(range(50, 90))})
        with faults.armed(f"{point}:crash"):
            with pytest.raises(faults.FaultInjected):
                save_table(table, path, rotate=True)
        recovered, used = recover_store(path)
        assert recovered.total_rows in (50, 90)
        if point == "checkpoint.tmp":
            # Nothing renamed yet: the primary still holds the old state.
            assert used == path and recovered.total_rows == 50
        if point == "checkpoint.done":
            # Replace happened: the primary holds the new state.
            assert used == path and recovered.total_rows == 90
        if point == "checkpoint.rotate":
            # Between the two renames only .prev is valid — and it is.
            assert used == Path(str(path) + ".prev")
            assert recovered.total_rows == 50

    def test_checksum_mismatch_is_detected_before_replay(self, tmp_path):
        """A silently corrupted array fails the manifest check with a
        'corrupt' diagnostic instead of restoring garbage."""
        import json

        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz")
        with np.load(path) as bundle:
            members = {name: bundle[name] for name in bundle.files}
        members["active"] = ~members["active"]  # bit-flip, header kept
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **members)
        with pytest.raises(StorageError, match="corrupt"):
            load_store(path)

    def test_missing_and_stray_arrays_are_detected(self, tmp_path):
        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz")
        with np.load(path) as bundle:
            members = {name: bundle[name] for name in bundle.files}
        del members["active"]
        members["smuggled"] = np.arange(3)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **members)
        with pytest.raises(StorageError, match="corrupt"):
            load_store(path)

    def test_recover_falls_back_to_prev_on_torn_primary(self, tmp_path):
        from repro.storage import recover_store

        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz")
        table.insert_batch(1, {"a": [1, 2]})
        save_table(table, path, rotate=True)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # tear the primary
        recovered, used = recover_store(path)
        assert used == Path(str(path) + ".prev")
        assert recovered.total_rows == 50

    def test_recover_failure_lists_every_attempt(self, tmp_path):
        from repro.storage import recover_store

        with pytest.raises(StorageError, match=r"ck\.npz.*ck\.npz\.prev"):
            recover_store(tmp_path / "ck.npz")

    def test_format_3_is_refused_clearly(self, tmp_path):
        """v3 files predate the durability manifest and must be refused
        with a re-create hint, not half-restored."""
        import json

        header = json.dumps({"format_version": 3, "kind": "table"})
        path = tmp_path / "v3.npz"
        np.savez(
            path, header=np.frombuffer(header.encode(), dtype=np.uint8)
        )
        with pytest.raises(StorageError, match="format 3"):
            load_store(path)

    def test_manifest_covers_every_saved_array(self, tmp_path):
        import json

        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz")
        with np.load(path) as bundle:
            header = json.loads(bytes(bundle["header"].tobytes()).decode())
            members = set(bundle.files) - {"header"}
        assert header["format_version"] == 4
        assert set(header["manifest"]) == members

    def test_no_tmp_file_left_behind_on_success(self, tmp_path):
        table = self._two_state_table()
        path = save_table(table, tmp_path / "ck.npz", rotate=True)
        save_table(table, path, rotate=True)
        leftovers = {p.name for p in tmp_path.iterdir()}
        assert leftovers == {"ck.npz", "ck.npz.prev"}

    def test_sharded_store_rotating_save_recovers(self, tmp_path):
        from repro.storage import recover_store

        store = PartitionedAmnesiaDatabase(
            "v", [0, 50, 100], 500, lambda: _make_policy("fifo"), seed=3
        )
        store.insert({"v": np.arange(100)})
        path = save_store(store, tmp_path / "shards.npz", rotate=True)
        store.insert({"v": np.arange(100)})
        save_store(store, path, rotate=True)
        recovered, used = recover_store(
            path, lambda: _make_policy("fifo")
        )
        assert used == path
        assert recovered.total_rows == 200
        assert recovered.ingest_epoch == store.ingest_epoch
