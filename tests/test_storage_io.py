"""Tests for table checkpointing (repro.storage.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import StorageError
from repro.storage import Table, load_table, save_table


@pytest.fixture
def rich_table(rng):
    """A table with several cohorts, forgets and access counts."""
    table = Table("events", ["k", "v"])
    for epoch in range(4):
        table.insert_batch(
            epoch,
            {
                "k": rng.integers(0, 100, 50),
                "v": rng.integers(0, 10_000, 50),
            },
        )
        active = table.active_positions()
        victims = rng.choice(active, 10, replace=False)
        table.forget(victims, epoch=epoch)
        table.record_access(rng.choice(table.active_positions(), 20), epoch)
    return table


class TestRoundTrip:
    def test_everything_survives(self, rich_table, tmp_path):
        path = save_table(rich_table, tmp_path / "t.npz")
        restored = load_table(path)

        assert restored.name == rich_table.name
        assert restored.column_names == rich_table.column_names
        assert restored.total_rows == rich_table.total_rows
        assert restored.active_count == rich_table.active_count
        for name in rich_table.column_names:
            assert np.array_equal(restored.values(name), rich_table.values(name))
        assert np.array_equal(restored.active_mask(), rich_table.active_mask())
        assert np.array_equal(
            restored.insert_epochs(), rich_table.insert_epochs()
        )
        assert np.array_equal(
            restored.forgotten_epochs(), rich_table.forgotten_epochs()
        )
        assert np.array_equal(
            restored.access_counts(), rich_table.access_counts()
        )
        assert np.array_equal(
            restored.last_access_epochs(), rich_table.last_access_epochs()
        )

    def test_cohorts_survive(self, rich_table, tmp_path):
        restored = load_table(save_table(rich_table, tmp_path / "t.npz"))
        assert restored.cohorts.epochs() == rich_table.cohorts.epochs()
        assert restored.cohort_activity() == rich_table.cohort_activity()

    def test_restored_table_is_usable(self, rich_table, tmp_path):
        """A restored table keeps simulating seamlessly."""
        restored = load_table(save_table(rich_table, tmp_path / "t.npz"))
        positions = restored.insert_batch(
            99, {"k": [1, 2], "v": [3, 4]}
        )
        assert positions.size == 2
        restored.forget(positions[:1], epoch=99)
        assert restored.forgotten_epochs()[positions[0]] == 99

    def test_fresh_table_roundtrip(self, tmp_path):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [1]})
        restored = load_table(save_table(table, tmp_path / "f.npz"))
        assert restored.total_rows == 1
        assert restored.active_count == 1


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_table(tmp_path / "nope.npz")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(StorageError):
            load_table(path)


class TestSimulatorCheckpoint:
    def test_checkpointed_simulation_state(self, tmp_path):
        """Save mid-run, restore, and verify the amnesia state is intact."""
        from repro import AmnesiaSimulator, SimulationConfig
        from repro.amnesia import RotAmnesia
        from repro.datagen import UniformDistribution

        simulator = AmnesiaSimulator(
            SimulationConfig(dbsize=100, epochs=4, queries_per_epoch=20),
            UniformDistribution(1000),
            RotAmnesia(),
        )
        simulator.load_initial()
        simulator.step()
        simulator.step()

        restored = load_table(save_table(simulator.table, tmp_path / "sim.npz"))
        assert restored.active_count == 100
        assert np.array_equal(
            restored.access_counts(), simulator.table.access_counts()
        )
