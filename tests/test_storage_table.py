"""Tests for repro.storage.table and catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import (
    InsufficientVictimsError,
    SchemaError,
    StorageError,
    UnknownColumnError,
)
from repro.storage import Catalog, Table


class TestSchema:
    def test_requires_name_and_columns(self):
        with pytest.raises(SchemaError):
            Table("", ["a"])
        with pytest.raises(SchemaError):
            Table("t", [])
        with pytest.raises(SchemaError):
            Table("t", ["a", "a"])

    def test_column_access(self, small_table):
        assert small_table.column_names == ("a",)
        assert small_table.has_column("a")
        assert not small_table.has_column("b")
        with pytest.raises(UnknownColumnError):
            small_table.column("b")


class TestInsert:
    def test_insert_returns_positions(self):
        table = Table("t", ["a", "b"])
        positions = table.insert_batch(0, {"a": [1, 2], "b": [3, 4]})
        assert positions.tolist() == [0, 1]
        assert table.total_rows == 2

    def test_insert_validates_columns(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(SchemaError):
            table.insert_batch(0, {"a": [1]})
        with pytest.raises(SchemaError):
            table.insert_batch(0, {"a": [1], "b": [2], "c": [3]})

    def test_insert_validates_lengths(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(SchemaError):
            table.insert_batch(0, {"a": [1, 2], "b": [3]})

    def test_insert_epochs_must_increase(self, small_table):
        with pytest.raises(StorageError):
            small_table.insert_batch(0, {"a": [1]})

    def test_metadata_initialised(self, small_table):
        assert (small_table.insert_epochs() == 0).all()
        assert (small_table.access_counts() == 0).all()
        assert (small_table.last_access_epochs() == -1).all()
        assert (small_table.forgotten_epochs() == -1).all()


class TestForget:
    def test_forget_flips_and_stamps(self, small_table):
        flipped = small_table.forget(np.array([0, 5]), epoch=3)
        assert flipped == 2
        assert small_table.active_count == 98
        assert small_table.forgotten_count == 2
        stamps = small_table.forgotten_epochs()
        assert stamps[0] == 3 and stamps[5] == 3 and stamps[1] == -1

    def test_forget_idempotent(self, small_table):
        small_table.forget(np.array([0]), epoch=1)
        assert small_table.forget(np.array([0]), epoch=2) == 0
        # First stamp is preserved.
        assert small_table.forgotten_epochs()[0] == 1

    def test_forget_empty(self, small_table):
        assert small_table.forget(np.empty(0, dtype=np.int64), epoch=1) == 0

    def test_require_victims(self, small_table):
        small_table.require_victims(100)
        with pytest.raises(InsufficientVictimsError):
            small_table.require_victims(101)

    def test_views_after_forget(self, small_table):
        small_table.forget(np.arange(0, 100, 2), epoch=1)
        assert small_table.active_positions().tolist() == list(range(1, 100, 2))
        assert small_table.forgotten_positions().tolist() == list(range(0, 100, 2))
        assert small_table.is_active(np.array([0, 1])).tolist() == [False, True]
        assert small_table.active_values("a").tolist() == list(range(1, 100, 2))


class TestAccessAccounting:
    def test_record_access_accumulates(self, small_table):
        small_table.record_access(np.array([1, 1, 2]), epoch=4)
        counts = small_table.access_counts()
        assert counts[1] == 2 and counts[2] == 1
        last = small_table.last_access_epochs()
        assert last[1] == 4 and last[2] == 4 and last[0] == -1

    def test_record_access_empty(self, small_table):
        small_table.record_access(np.empty(0, dtype=np.int64), epoch=1)
        assert (small_table.access_counts() == 0).all()


class TestCohortActivity:
    def test_activity_fractions(self, epoch_table):
        # Forget all of epoch 0's 20 rows and half of epoch 1's.
        epoch_table.forget(np.arange(20), epoch=3)
        epoch_table.forget(np.arange(20, 30), epoch=3)
        activity = epoch_table.cohort_activity()
        assert activity[0] == 0.0
        assert activity[1] == 0.5
        assert activity[2] == 1.0

    def test_empty_cohorts_anywhere_in_the_log(self):
        """Zero-row batches must not perturb their neighbours' counts —
        the reduceat rewrite's edge cases (regression: a trailing empty
        cohort used to steal the last row of the cohort before it)."""
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": [5, 6]})
        table.insert_batch(1, {"a": []})
        assert table.cohort_activity() == {0: 1.0, 1: 0.0}
        table.insert_batch(2, {"a": [7, 8, 9]})
        table.insert_batch(3, {"a": []})
        table.insert_batch(4, {"a": []})
        table.forget(np.array([2]), epoch=5)
        assert table.cohort_activity() == {
            0: 1.0, 1: 0.0, 2: 2 / 3, 3: 0.0, 4: 0.0,
        }
        empty = Table("e", ["a"])
        assert empty.cohort_activity() == {}
        empty.insert_batch(0, {"a": []})
        assert empty.cohort_activity() == {0: 0.0}


class TestObservers:
    class Recorder:
        def __init__(self):
            self.inserted = []
            self.forgotten = []

        def on_insert(self, table, positions):
            self.inserted.append(positions.tolist())

        def on_forget(self, table, positions):
            self.forgotten.append(positions.tolist())

    def test_observer_notified(self, small_table):
        recorder = self.Recorder()
        small_table.add_observer(recorder, backfill=False)
        small_table.insert_batch(1, {"a": [7, 8]})
        small_table.forget(np.array([0, 1]), epoch=1)
        assert recorder.inserted == [[100, 101]]
        assert recorder.forgotten == [[0, 1]]

    def test_registration_backfills_existing_rows(self, small_table):
        recorder = self.Recorder()
        small_table.forget(np.array([0]), epoch=1)
        small_table.add_observer(recorder)
        assert recorder.inserted == [list(range(100))]
        assert recorder.forgotten == [[0]]

    def test_backfilled_observer_sees_only_new_forgets_afterwards(
        self, small_table
    ):
        recorder = self.Recorder()
        small_table.forget(np.array([0]), epoch=1)
        small_table.add_observer(recorder)
        small_table.forget(np.array([0, 1]), epoch=2)
        # Backfill delivered [0]; the live stream adds only the new [1].
        assert recorder.forgotten == [[0], [1]]

    def test_backfill_skipped_on_empty_table(self):
        table = Table("t", ["a"])
        recorder = self.Recorder()
        table.add_observer(recorder)
        assert recorder.inserted == []
        assert recorder.forgotten == []

    def test_backfill_opt_out_sees_only_live_stream(self, small_table):
        recorder = self.Recorder()
        small_table.forget(np.array([0]), epoch=1)
        small_table.add_observer(recorder, backfill=False)
        small_table.forget(np.array([0, 1]), epoch=2)
        assert recorder.inserted == []
        assert recorder.forgotten == [[1]]

    def test_observer_registration_errors(self, small_table):
        recorder = self.Recorder()
        small_table.add_observer(recorder)
        with pytest.raises(StorageError):
            small_table.add_observer(recorder)
        small_table.remove_observer(recorder)
        with pytest.raises(StorageError):
            small_table.remove_observer(recorder)


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        table = catalog.create_table("t", ["a"])
        assert catalog.get("t") is table
        assert "t" in catalog
        assert len(catalog) == 1
        assert catalog.names() == ["t"]

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        with pytest.raises(SchemaError):
            catalog.create_table("t", ["b"])
        with pytest.raises(SchemaError):
            catalog.register(Table("t", ["c"]))

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        catalog.drop("t")
        assert "t" not in catalog
        with pytest.raises(SchemaError):
            catalog.drop("t")
        with pytest.raises(SchemaError):
            catalog.get("t")

    def test_register_external(self):
        catalog = Catalog()
        table = Table("ext", ["a"])
        catalog.register(table)
        assert catalog.get("ext") is table
        assert list(catalog) == [table]


class TestCatalogPlanning:
    def _loaded(self, plan=None):
        catalog = Catalog(plan=plan)
        table = catalog.create_table("obs", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        return catalog, table

    def test_planner_and_executor_are_cached(self):
        catalog, _ = self._loaded(plan="auto")
        assert catalog.planner("obs") is catalog.planner("obs")
        assert catalog.executor("obs") is catalog.executor("obs")
        assert catalog.executor("obs").planner is catalog.planner("obs")

    def test_record_access_variants_cached_separately(self):
        """A read-only pass must not inherit (or freeze in) the
        accounting choice of an earlier caller."""
        from repro.query import RangePredicate, RangeQuery

        catalog, table = self._loaded(plan="auto")
        query = RangeQuery(RangePredicate("a", 0, 10))
        catalog.executor("obs", record_access=False).execute(query, epoch=1)
        assert table.access_counts().sum() == 0
        catalog.execute("obs", query, epoch=1)  # default: recording
        assert table.access_counts().sum() == 10

    def test_plan_and_report(self):
        from repro.query import RangePredicate

        catalog, _ = self._loaded(plan="cost")
        plan = catalog.plan("obs", RangePredicate("a", 0, 10))
        assert plan.requested == "cost"
        assert catalog.explain("obs", RangePredicate("a", 0, 10)).mode == plan.mode
        report = catalog.plan_report()
        assert "table 'obs'" in report

    def test_invalid_plan_rejected(self):
        with pytest.raises(Exception):
            Catalog(plan="warp")

    def test_invalid_workers_rejected(self):
        with pytest.raises(Exception):
            Catalog(workers=0)

    def test_execute_batch_parallel_matches_sequential(self):
        """Batch fan-out across tables: request order, results and
        access accounting all match a sequential loop exactly."""
        from repro.query import RangePredicate, RangeQuery

        def build(workers):
            catalog = Catalog(plan="auto", workers=workers)
            for name in ("s1", "s2", "s3"):
                table = catalog.create_table(name, ["a"])
                table.insert_batch(0, {"a": np.arange(200)})
                table.forget(np.arange(0, 200, 3), epoch=1)
            return catalog

        requests = [
            (name, RangeQuery(RangePredicate("a", low, low + 40)))
            for low in (0, 50, 120)
            for name in ("s1", "s2", "s3", "s1")
        ]
        sequential = build(workers=1)
        parallel = build(workers=4)
        expected = [
            sequential.execute(name, query, epoch=2)
            for name, query in requests
        ]
        got = parallel.execute_batch(requests, epoch=2)
        assert [(r.rf, r.mf) for r in got] == [
            (r.rf, r.mf) for r in expected
        ]
        for name in ("s1", "s2", "s3"):
            assert (
                parallel.get(name).access_counts().tolist()
                == sequential.get(name).access_counts().tolist()
            )

    def test_execute_batch_duplicate_name_order_pinned(self):
        """Regression: a table name queried several times in one batch
        keeps its results at their request indices and its queries in
        submission order, at any worker width.

        The contract is pinned on full result fingerprints (positions
        and aggregate values, not just counts) plus the per-table
        planner/access state the submission order determines.
        """
        from repro.query import (
            AggregateFunction,
            AggregateQuery,
            RangePredicate,
            RangeQuery,
        )

        def build(workers):
            catalog = Catalog(plan="auto", workers=workers)
            for name in ("s1", "s2"):
                table = catalog.create_table(name, ["a"])
                table.insert_batch(0, {"a": np.arange(300)})
                table.forget(np.arange(0, 300, 5), epoch=1)
            return catalog

        def fingerprint(result):
            if hasattr(result, "active_positions"):
                return (
                    result.rf,
                    result.mf,
                    result.active_positions.tolist(),
                    result.missed_positions.tolist(),
                )
            return (result.amnesiac_value, result.oracle_value)

        requests = []
        for low in (0, 40, 150, 220):
            requests.append(
                ("s1", RangeQuery(RangePredicate("a", low, low + 50)))
            )
            requests.append(
                (
                    "s1",
                    AggregateQuery(
                        AggregateFunction.SUM,
                        "a",
                        RangePredicate("a", low, low + 80),
                    ),
                )
            )
            requests.append(
                ("s2", RangeQuery(RangePredicate("a", low, low + 50)))
            )
            requests.append(
                ("s1", RangeQuery(RangePredicate("a", low + 5, low + 30)))
            )
        sequential = build(workers=1)
        expected = [
            fingerprint(sequential.execute(name, query, epoch=2))
            for name, query in requests
        ]
        for workers in (2, 8):
            parallel = build(workers=workers)
            got = [
                fingerprint(r)
                for r in parallel.execute_batch(requests, epoch=2)
            ]
            assert got == expected
            for name in ("s1", "s2"):
                assert (
                    parallel.get(name).access_counts().tolist()
                    == sequential.get(name).access_counts().tolist()
                )
                assert (
                    parallel.planner(name).stats()
                    == sequential.planner(name).stats()
                )

    def test_concurrent_batches_share_tables_exactly(self):
        """Two caller threads batching over the *same* tables: the
        per-table source locks keep access accounting exact (each
        query's bump lands atomically), so the final counters equal the
        sequential double-run."""
        import threading

        from repro.query import RangePredicate, RangeQuery

        def build(workers):
            catalog = Catalog(plan="auto", workers=workers)
            table = catalog.create_table("s1", ["a"])
            table.insert_batch(0, {"a": np.arange(400)})
            return catalog

        requests = [
            ("s1", RangeQuery(RangePredicate("a", low, low + 120)))
            for low in (0, 60, 180, 240)
        ] * 5
        sequential = build(workers=1)
        for _ in range(2):
            sequential.execute_batch(requests, epoch=1)
        expected = sequential.get("s1").access_counts().tolist()

        parallel = build(workers=4)
        threads = [
            threading.Thread(
                target=parallel.execute_batch, args=(requests, 1)
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert parallel.get("s1").access_counts().tolist() == expected

    def test_source_lock_surface(self):
        """Tables share one lock per name; sharded sources are a null
        context (they serialize per shard internally)."""
        from repro.amnesia import FifoAmnesia
        from repro.partitioning import PartitionedAmnesiaDatabase

        catalog = Catalog()
        catalog.create_table("t", ["a"])
        assert catalog.source_lock("t") is catalog.source_lock("t")
        store = PartitionedAmnesiaDatabase(
            "a", (0, 10), total_budget=5, policy_factory=FifoAmnesia
        )
        catalog.register_sharded("sh", store)
        with catalog.source_lock("sh"):
            pass  # null context — no lock to hold
        with pytest.raises(SchemaError):
            catalog.source_lock("nope")

    def test_default_plan_pinned_at_first_use(self):
        """One catalog = one plan story, even if the process default
        changes mid-run (as the CLI does around each experiment)."""
        from repro.core.config import default_plan, set_default_plan

        previous = default_plan()
        catalog = Catalog()
        t1 = catalog.create_table("t1", ["a"])
        t1.insert_batch(0, {"a": np.arange(10)})
        try:
            set_default_plan("auto")
            assert catalog.planner("t1").mode == "auto"
            set_default_plan("scan")
            t2 = catalog.create_table("t2", ["a"])
            t2.insert_batch(0, {"a": np.arange(10)})
            assert catalog.planner("t2").mode == "auto"  # pinned, not 'scan'
            assert catalog.plan_mode == "auto"
        finally:
            set_default_plan(previous)

    def test_drop_clears_planner_and_executors(self):
        catalog, _ = self._loaded(plan="auto")
        catalog.executor("obs")
        catalog.executor("obs", record_access=False)
        catalog.drop("obs")
        assert not catalog._planners and not catalog._executors
