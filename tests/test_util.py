"""Tests for repro._util: errors, RNG plumbing, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import (
    AmnesiaError,
    ConfigError,
    InsufficientVictimsError,
    ReproError,
    SchemaError,
    StorageError,
    UnknownColumnError,
)
from repro._util.rng import DEFAULT_SEED, derive_seed, make_rng, spawn
from repro._util.validation import (
    as_int_array,
    check_fraction,
    check_in,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigError, StorageError, SchemaError, AmnesiaError):
            assert issubclass(exc, ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_unknown_column_lists_available(self):
        err = UnknownColumnError("x", ("a", "b"))
        assert "x" in str(err)
        assert "a" in str(err)
        assert isinstance(err, KeyError)

    def test_insufficient_victims_message(self):
        err = InsufficientVictimsError(10, 3)
        assert err.requested == 10
        assert err.active == 3
        assert "10" in str(err) and "3" in str(err)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "data") == derive_seed(1, "data")

    def test_derive_seed_name_sensitive(self):
        assert derive_seed(1, "data") != derive_seed(1, "queries")

    def test_derive_seed_seed_sensitive(self):
        assert derive_seed(1, "data") != derive_seed(2, "data")

    def test_spawn_reproducible(self):
        a, b = spawn(7, "x"), spawn(7, "x")
        assert a.random() == b.random()

    def test_spawn_independent_streams(self):
        a, b = spawn(7, "x"), spawn(7, "y")
        assert a.random() != b.random()

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_default_seed(self):
        assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()

    def test_make_rng_from_int(self):
        assert make_rng(5).random() == np.random.default_rng(5).random()


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3
        assert check_positive_int(np.int64(3), "n") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigError):
            check_positive_int(bad, "n")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ConfigError):
            check_non_negative_int(-1, "n")

    def test_fraction_bounds(self):
        assert check_fraction(1.0, "f") == 1.0
        assert check_fraction(0.001, "f") == 0.001
        with pytest.raises(ConfigError):
            check_fraction(0.0, "f")
        with pytest.raises(ConfigError):
            check_fraction(1.01, "f")

    def test_fraction_inclusive_zero(self):
        assert check_fraction(0.0, "f", inclusive_zero=True) == 0.0

    def test_probability_is_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_positive_float(self):
        assert check_positive_float(0.5, "x") == 0.5
        with pytest.raises(ConfigError):
            check_positive_float(0.0, "x")
        with pytest.raises(ConfigError):
            check_positive_float(float("nan"), "x")
        with pytest.raises(ConfigError):
            check_positive_float(float("inf"), "x")

    def test_non_negative_float(self):
        assert check_non_negative_float(0.0, "x") == 0.0
        with pytest.raises(ConfigError):
            check_non_negative_float(-0.1, "x")

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "opt") == "a"
        with pytest.raises(ConfigError):
            check_in("c", ("a", "b"), "opt")

    def test_as_int_array_from_list(self):
        out = as_int_array([1, 2, 3], "xs")
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_as_int_array_from_whole_floats(self):
        out = as_int_array(np.array([1.0, 2.0]), "xs")
        assert out.tolist() == [1, 2]

    def test_as_int_array_rejects_fractional(self):
        with pytest.raises(ConfigError):
            as_int_array(np.array([1.5]), "xs")

    def test_as_int_array_rejects_2d(self):
        with pytest.raises(ConfigError):
            as_int_array(np.zeros((2, 2)), "xs")

    def test_as_int_array_rejects_strings(self):
        with pytest.raises(ConfigError):
            as_int_array(np.array(["a"]), "xs")
